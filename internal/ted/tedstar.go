// Package ted implements TED*, the modified tree edit distance that is
// the primary contribution of the NED paper (§4–5): a polynomially
// computable metric on unordered, unlabeled rooted trees whose edit
// operations — insert a leaf, delete a leaf, move a node within its level
// — never change the depth of an existing node.
//
// The algorithm follows the paper's Algorithm 1 exactly: levels are
// processed bottom-up; each level contributes a padding cost P_i (leaf
// inserts/deletes) and a matching cost M_i = (m(G²_i) − P_{i+1})/2 (moves),
// where m(G²_i) is a minimum-weight bipartite matching between the two
// levels under children-label symmetric-difference weights. The overall
// complexity is O(k·n³) with k the tree height and n the maximum level
// width, dominated by the Hungarian matching.
//
// Level convention: depth 0 is the root (the paper's level 1), so the
// k-adjacent tree T(v,k) spans depths 0..k.
//
// # Faithfulness note
//
// Definition 3 of the paper (the minimum number of edit operations) is a
// true metric: the §7 proofs go through for any minimum-edit-script
// distance with reversible operations. Algorithm 1, however, commits to
// one minimum-weight bipartite matching per level, and when several
// optimal matchings exist the re-canonization outcome — and therefore the
// final value — depends on which one the solver returns. The value is
// always the cost of a concrete valid edit script, hence an upper bound
// on the Definition-3 optimum, and it coincides with the optimum in the
// overwhelming majority of cases (quantified against the exhaustive
// oracle in internal/exact; see EXPERIMENTS.md), but exact triangle
// inequality and the Lemma-5 monotonicity can be violated at a sub-percent
// rate by tie artifacts. This library makes the computed function
// deterministic and exactly symmetric by evaluating every pair in a
// canonical orientation; identity (zero iff isomorphic) holds exactly.
package ted

import (
	"fmt"

	"ned/internal/tree"
)

// LevelCost records the two cost components contributed by one depth of
// the comparison, making a TED* value interpretable as an edit script
// summary: Padding leaf-insert/delete operations and Matching move
// operations (§5.1).
type LevelCost struct {
	Depth    int
	Padding  int // P_i: number of "insert a leaf" / "delete a leaf" ops
	Matching int // M_i: number of "move a node at the same level" ops
}

// Report is the full breakdown of a TED* computation.
type Report struct {
	Distance int
	Levels   []LevelCost
}

// Distance returns the TED* distance between two unordered trees. The
// pair is evaluated in a canonical orientation (smaller tree first, ties
// broken by height then AHU encoding), which makes the function exactly
// symmetric and independent of argument order.
//
// Distance borrows a pooled Computer; hot loops that can hold one per
// worker should use Computer.Distance directly.
func Distance(t1, t2 *tree.Tree) int {
	c := computerPool.Get().(*Computer)
	d := c.Distance(t1, t2)
	computerPool.Put(c)
	return d
}

// DistanceOrdered runs Algorithm 1 on the pair exactly as given, without
// the canonical reorientation of Distance. Use it when a sweep must keep
// a fixed transformation direction (for example the Lemma-5 monotonicity
// experiments, which truncate the same oriented pair at increasing k).
// Under matching ties DistanceOrdered(a,b) may differ slightly from
// DistanceOrdered(b,a); both are valid edit-script costs.
func DistanceOrdered(t1, t2 *tree.Tree) int {
	c := computerPool.Get().(*Computer)
	d := c.DistanceOrdered(t1, t2)
	computerPool.Put(c)
	return d
}

// DistanceAtMost is the budgeted TED* on a pooled Computer; see
// Computer.DistanceAtMost for the contract.
func DistanceAtMost(t1, t2 *tree.Tree, budget int) (int, Outcome) {
	c := computerPool.Get().(*Computer)
	d, out := c.DistanceAtMost(t1, t2, budget)
	computerPool.Put(c)
	return d, out
}

// DistanceReport returns the TED* distance together with the per-level
// padding/matching breakdown, in the same canonical orientation used by
// Distance.
func DistanceReport(t1, t2 *tree.Tree) Report {
	t1, t2 = orient(t1, t2)
	_, rep := compute(t1, t2)
	return rep
}

// orient returns the pair in canonical order: by size, then height, then
// AHU canonical encoding. Equal trees compare equal on all three keys, in
// which case order is irrelevant (the computation is deterministic).
func orient(t1, t2 *tree.Tree) (*tree.Tree, *tree.Tree) {
	switch {
	case t1.Size() != t2.Size():
		if t1.Size() > t2.Size() {
			return t2, t1
		}
	case t1.Height() != t2.Height():
		if t1.Height() > t2.Height() {
			return t2, t1
		}
	default:
		if tree.Canonical(t1) > tree.Canonical(t2) {
			return t2, t1
		}
	}
	return t1, t2
}

// Weights supplies per-depth operation weights for the weighted TED* of
// §12: Pad(d) is the cost of inserting or deleting a leaf at depth d and
// Move(d) the cost of moving a node whose matching happens at depth d.
// Both must be strictly positive for the result to remain a metric
// (Lemma 6).
type Weights interface {
	Pad(depth int) float64
	Move(depth int) float64
}

// UnitWeights reproduces the unweighted TED* (every operation costs 1).
type UnitWeights struct{}

// Pad implements Weights.
func (UnitWeights) Pad(int) float64 { return 1 }

// Move implements Weights.
func (UnitWeights) Move(int) float64 { return 1 }

// UpperBoundWeights is the δT(W+) weighting of Definition 8 (w¹_i = 1,
// w²_i = 4i with the paper's 1-based level index), which upper-bounds the
// original unordered tree edit distance (Lemma 7).
type UpperBoundWeights struct{}

// Pad implements Weights.
func (UpperBoundWeights) Pad(int) float64 { return 1 }

// Move implements Weights. The paper indexes levels from 1 at the root;
// depth d is level d+1.
func (UpperBoundWeights) Move(depth int) float64 { return 4 * float64(depth+1) }

// LevelWeights is a Weights backed by explicit per-depth slices; depths
// beyond the slice reuse the last entry.
type LevelWeights struct {
	PadW  []float64
	MoveW []float64
}

// Pad implements Weights.
func (w LevelWeights) Pad(d int) float64 { return at(w.PadW, d) }

// Move implements Weights.
func (w LevelWeights) Move(d int) float64 { return at(w.MoveW, d) }

func at(s []float64, d int) float64 {
	if len(s) == 0 {
		return 1
	}
	if d >= len(s) {
		d = len(s) - 1
	}
	return s[d]
}

// WeightedDistance returns the weighted TED* δT(W) of §12, evaluated in
// the same canonical orientation as Distance. With UnitWeights it equals
// float64(Distance(t1, t2)).
func WeightedDistance(t1, t2 *tree.Tree, w Weights) float64 {
	if w == nil {
		w = UnitWeights{}
	}
	t1, t2 = orient(t1, t2)
	d, _ := computeWeighted(t1, t2, w)
	return d
}

// compute runs Algorithm 1 and returns the integer distance plus report.
// The matching machinery itself — children collections, canonization,
// equal-label pre-match, and the budgeted level sweep — lives on
// Computer (computer.go); this wrapper only arranges the report.
func compute(t1, t2 *tree.Tree) (int, Report) {
	c := computerPool.Get().(*Computer)
	rep := Report{}
	total, _ := c.run(t1, t2, int64(Unbounded), &rep)
	computerPool.Put(c)
	// Report levels in root-down order for readability.
	for i, j := 0, len(rep.Levels)-1; i < j; i, j = i+1, j-1 {
		rep.Levels[i], rep.Levels[j] = rep.Levels[j], rep.Levels[i]
	}
	rep.Distance = total
	return total, rep
}

func computeWeighted(t1, t2 *tree.Tree, w Weights) (float64, Report) {
	c := computerPool.Get().(*Computer)
	rep := Report{}
	c.run(t1, t2, int64(Unbounded), &rep)
	computerPool.Put(c)
	total := 0.0
	for _, lc := range rep.Levels {
		total += w.Pad(lc.Depth)*float64(lc.Padding) + w.Move(lc.Depth)*float64(lc.Matching)
	}
	rep.Distance = int(total)
	return total, rep
}

func equalCollections(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// symmetricDifference returns |A\B| + |B\A| for sorted multisets
// (Algorithm 3 line 6) via a linear merge.
func symmetricDifference(a, b []int32) int64 {
	i, j := 0, 0
	var diff int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			diff++
			i++
		default:
			diff++
			j++
		}
	}
	return diff + int64(len(a)-i) + int64(len(b)-j)
}

// Validate cross-checks a Report for internal consistency; used by tests
// and fuzzing harnesses.
func (r Report) Validate() error {
	sum := 0
	for _, lc := range r.Levels {
		if lc.Padding < 0 || lc.Matching < 0 {
			return fmt.Errorf("ted: negative cost at depth %d: %+v", lc.Depth, lc)
		}
		sum += lc.Padding + lc.Matching
	}
	if sum != r.Distance {
		return fmt.Errorf("ted: level costs sum to %d, distance is %d", sum, r.Distance)
	}
	return nil
}
