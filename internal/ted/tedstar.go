// Package ted implements TED*, the modified tree edit distance that is
// the primary contribution of the NED paper (§4–5): a polynomially
// computable metric on unordered, unlabeled rooted trees whose edit
// operations — insert a leaf, delete a leaf, move a node within its level
// — never change the depth of an existing node.
//
// The algorithm follows the paper's Algorithm 1 exactly: levels are
// processed bottom-up; each level contributes a padding cost P_i (leaf
// inserts/deletes) and a matching cost M_i = (m(G²_i) − P_{i+1})/2 (moves),
// where m(G²_i) is a minimum-weight bipartite matching between the two
// levels under children-label symmetric-difference weights. The overall
// complexity is O(k·n³) with k the tree height and n the maximum level
// width, dominated by the Hungarian matching.
//
// Level convention: depth 0 is the root (the paper's level 1), so the
// k-adjacent tree T(v,k) spans depths 0..k.
//
// # Faithfulness note
//
// Definition 3 of the paper (the minimum number of edit operations) is a
// true metric: the §7 proofs go through for any minimum-edit-script
// distance with reversible operations. Algorithm 1, however, commits to
// one minimum-weight bipartite matching per level, and when several
// optimal matchings exist the re-canonization outcome — and therefore the
// final value — depends on which one the solver returns. The value is
// always the cost of a concrete valid edit script, hence an upper bound
// on the Definition-3 optimum, and it coincides with the optimum in the
// overwhelming majority of cases (quantified against the exhaustive
// oracle in internal/exact; see EXPERIMENTS.md), but exact triangle
// inequality and the Lemma-5 monotonicity can be violated at a sub-percent
// rate by tie artifacts. This library makes the computed function
// deterministic and exactly symmetric by evaluating every pair in a
// canonical orientation; identity (zero iff isomorphic) holds exactly.
package ted

import (
	"fmt"
	"sort"

	"ned/internal/hungarian"
	"ned/internal/tree"
)

// LevelCost records the two cost components contributed by one depth of
// the comparison, making a TED* value interpretable as an edit script
// summary: Padding leaf-insert/delete operations and Matching move
// operations (§5.1).
type LevelCost struct {
	Depth    int
	Padding  int // P_i: number of "insert a leaf" / "delete a leaf" ops
	Matching int // M_i: number of "move a node at the same level" ops
}

// Report is the full breakdown of a TED* computation.
type Report struct {
	Distance int
	Levels   []LevelCost
}

// Distance returns the TED* distance between two unordered trees. The
// pair is evaluated in a canonical orientation (smaller tree first, ties
// broken by height then AHU encoding), which makes the function exactly
// symmetric and independent of argument order.
func Distance(t1, t2 *tree.Tree) int {
	t1, t2 = orient(t1, t2)
	d, _ := compute(t1, t2)
	return d
}

// DistanceOrdered runs Algorithm 1 on the pair exactly as given, without
// the canonical reorientation of Distance. Use it when a sweep must keep
// a fixed transformation direction (for example the Lemma-5 monotonicity
// experiments, which truncate the same oriented pair at increasing k).
// Under matching ties DistanceOrdered(a,b) may differ slightly from
// DistanceOrdered(b,a); both are valid edit-script costs.
func DistanceOrdered(t1, t2 *tree.Tree) int {
	d, _ := compute(t1, t2)
	return d
}

// DistanceReport returns the TED* distance together with the per-level
// padding/matching breakdown, in the same canonical orientation used by
// Distance.
func DistanceReport(t1, t2 *tree.Tree) Report {
	t1, t2 = orient(t1, t2)
	_, rep := compute(t1, t2)
	return rep
}

// orient returns the pair in canonical order: by size, then height, then
// AHU canonical encoding. Equal trees compare equal on all three keys, in
// which case order is irrelevant (the computation is deterministic).
func orient(t1, t2 *tree.Tree) (*tree.Tree, *tree.Tree) {
	switch {
	case t1.Size() != t2.Size():
		if t1.Size() > t2.Size() {
			return t2, t1
		}
	case t1.Height() != t2.Height():
		if t1.Height() > t2.Height() {
			return t2, t1
		}
	default:
		if tree.Canonical(t1) > tree.Canonical(t2) {
			return t2, t1
		}
	}
	return t1, t2
}

// Weights supplies per-depth operation weights for the weighted TED* of
// §12: Pad(d) is the cost of inserting or deleting a leaf at depth d and
// Move(d) the cost of moving a node whose matching happens at depth d.
// Both must be strictly positive for the result to remain a metric
// (Lemma 6).
type Weights interface {
	Pad(depth int) float64
	Move(depth int) float64
}

// UnitWeights reproduces the unweighted TED* (every operation costs 1).
type UnitWeights struct{}

// Pad implements Weights.
func (UnitWeights) Pad(int) float64 { return 1 }

// Move implements Weights.
func (UnitWeights) Move(int) float64 { return 1 }

// UpperBoundWeights is the δT(W+) weighting of Definition 8 (w¹_i = 1,
// w²_i = 4i with the paper's 1-based level index), which upper-bounds the
// original unordered tree edit distance (Lemma 7).
type UpperBoundWeights struct{}

// Pad implements Weights.
func (UpperBoundWeights) Pad(int) float64 { return 1 }

// Move implements Weights. The paper indexes levels from 1 at the root;
// depth d is level d+1.
func (UpperBoundWeights) Move(depth int) float64 { return 4 * float64(depth+1) }

// LevelWeights is a Weights backed by explicit per-depth slices; depths
// beyond the slice reuse the last entry.
type LevelWeights struct {
	PadW  []float64
	MoveW []float64
}

// Pad implements Weights.
func (w LevelWeights) Pad(d int) float64 { return at(w.PadW, d) }

// Move implements Weights.
func (w LevelWeights) Move(d int) float64 { return at(w.MoveW, d) }

func at(s []float64, d int) float64 {
	if len(s) == 0 {
		return 1
	}
	if d >= len(s) {
		d = len(s) - 1
	}
	return s[d]
}

// WeightedDistance returns the weighted TED* δT(W) of §12, evaluated in
// the same canonical orientation as Distance. With UnitWeights it equals
// float64(Distance(t1, t2)).
func WeightedDistance(t1, t2 *tree.Tree, w Weights) float64 {
	if w == nil {
		w = UnitWeights{}
	}
	t1, t2 = orient(t1, t2)
	d, _ := computeWeighted(t1, t2, w)
	return d
}

// compute runs Algorithm 1 and returns the integer distance plus report.
func compute(t1, t2 *tree.Tree) (int, Report) {
	s := newSession(t1, t2)
	rep := Report{}
	total := 0
	for d := s.maxDepth; d >= 0; d-- {
		p, m := s.level(d)
		total += p + m
		rep.Levels = append(rep.Levels, LevelCost{Depth: d, Padding: p, Matching: m})
	}
	// Report levels in root-down order for readability.
	for i, j := 0, len(rep.Levels)-1; i < j; i, j = i+1, j-1 {
		rep.Levels[i], rep.Levels[j] = rep.Levels[j], rep.Levels[i]
	}
	rep.Distance = total
	return total, rep
}

func computeWeighted(t1, t2 *tree.Tree, w Weights) (float64, Report) {
	s := newSession(t1, t2)
	rep := Report{}
	total := 0.0
	for d := s.maxDepth; d >= 0; d-- {
		p, m := s.level(d)
		total += w.Pad(d)*float64(p) + w.Move(d)*float64(m)
		rep.Levels = append(rep.Levels, LevelCost{Depth: d, Padding: p, Matching: m})
	}
	rep.Distance = int(total)
	return total, rep
}

// session holds the mutable per-comparison state: current canonization
// labels for the most recently processed level of each tree.
type session struct {
	t1, t2   *tree.Tree
	maxDepth int

	// Labels of nodes at the previously processed depth (depth+1 when
	// level(depth) runs), indexed by tree-node ID. Only entries for that
	// depth are meaningful.
	lab1, lab2 []int32

	// prevPad is P_{i+1}: the padding cost of the previously processed
	// (deeper) level.
	prevPad int

	// scratch
	costBuf []int64
}

func newSession(t1, t2 *tree.Tree) *session {
	maxD := t1.Height()
	if h := t2.Height(); h > maxD {
		maxD = h
	}
	return &session{
		t1:       t1,
		t2:       t2,
		maxDepth: maxD,
		lab1:     make([]int32, t1.Size()),
		lab2:     make([]int32, t2.Size()),
	}
}

// level executes the six steps of Algorithm 1 for one depth and returns
// (P_d, M_d). It must be called with strictly decreasing depths starting
// at maxDepth.
func (s *session) level(d int) (padding, matching int) {
	lo1, hi1 := s.t1.LevelRange(d)
	lo2, hi2 := s.t2.LevelRange(d)
	n1 := int(hi1 - lo1)
	n2 := int(hi2 - lo2)

	// Step 1: node padding (lines 2–6). The smaller side is padded with
	// leaf nodes that have no parent and no children.
	padding = n1 - n2
	if padding < 0 {
		padding = -padding
	}
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		s.prevPad = padding
		return padding, 0
	}

	// Step 2: node canonization (lines 7–8, Algorithm 2). Children
	// collections use the labels assigned when depth d+1 was processed
	// (after its re-canonization), exactly as §5.3 prescribes.
	coll1 := s.collections(s.t1, s.lab1, lo1, hi1)
	coll2 := s.collections(s.t2, s.lab2, lo2, hi2)
	canonize(coll1, coll2, s.lab1[lo1:hi1], s.lab2[lo2:hi2])

	// Steps 3–4: complete weighted bipartite graph + minimum matching
	// (lines 9–14, Algorithm 3). Row r = node lo1+r of t1 (rows >= n1 are
	// padded), column c = node lo2+c of t2 (columns >= n2 are padded).
	// Padded nodes have empty collections.
	//
	// Optimization over the naive O(n³) matching: the edge weight is the
	// symmetric multiset difference, which is a metric on collections, so
	// any zero-weight pair (equal canonization labels — padded nodes
	// share the label of childless real nodes) belongs to some optimal
	// matching by a standard exchange argument. Greedily pre-matching
	// equal-label pairs leaves the Hungarian solver only the mismatched
	// residue, which is typically a small fraction of a level. The
	// pre-matched pairs are label-identical, so re-canonization is a
	// no-op for them and the choice within a label group is unobservable.
	rows, cols := s.leftovers(coll1, coll2, lo1, lo2, n1, n2, n)
	ln := len(rows)
	var m int64
	var assign []int
	if ln > 0 {
		if cap(s.costBuf) < ln*ln {
			s.costBuf = make([]int64, ln*ln)
		}
		cost := s.costBuf[:ln*ln]
		for ri, r := range rows {
			var sr []int32
			if r < n1 {
				sr = coll1[r]
			}
			for ci, c := range cols {
				var sc []int32
				if c < n2 {
					sc = coll2[c]
				}
				cost[ri*ln+ci] = symmetricDifference(sr, sc)
			}
		}
		m, assign = hungarian.SolveFlat(cost, ln)
	}

	// Step 5: matching cost (line 15, Equation 5).
	diff := int(m) - s.prevPad
	if diff < 0 {
		// Cannot happen per the correctness proof (§6); clamp defensively
		// so arithmetic noise can never produce a negative distance.
		diff = 0
	}
	matching = diff / 2

	// Step 6: node re-canonization (lines 16–19). The smaller level's
	// real nodes adopt the labels of their matched partners so the next
	// (shallower) level sees identical child-label multisets. Labels of
	// padded nodes never propagate (they have no parent), so only real
	// leftover nodes need updating (pre-matched pairs already agree).
	if n1 < n2 {
		for ri, r := range rows {
			if r < n1 {
				s.lab1[lo1+int32(r)] = s.lab2[lo2+int32(cols[assign[ri]])]
			}
		}
	} else {
		for ri, r := range rows {
			if c := cols[assign[ri]]; c < n2 && r < n1 {
				s.lab2[lo2+int32(c)] = s.lab1[lo1+int32(r)]
			}
		}
	}
	s.prevPad = padding
	return padding, matching
}

// leftovers pre-matches equal-label pairs across the two (padded) levels
// and returns the residual row and column indices that still need the
// optimal matcher. Indices >= n1 (rows) or >= n2 (cols) denote padded
// nodes, whose label is the label shared by childless nodes (or a
// reserved fresh label when no real node is childless).
func (s *session) leftovers(coll1, coll2 [][]int32, lo1, lo2 int32, n1, n2, n int) (rows, cols []int) {
	// Label of a padded node: pads have empty collections. canonize
	// assigned the empty collection the smallest label IF any real node
	// at this level is childless; otherwise pads get a label below every
	// real label. Empty collections sort first in lessCollections, so
	// label 0 is the empty collection's label whenever one exists; use
	// -1 as the pad label when no real node is childless.
	padLabel := int32(-1)
	for r := 0; r < n1; r++ {
		if len(coll1[r]) == 0 {
			padLabel = s.lab1[lo1+int32(r)]
			break
		}
	}
	if padLabel == -1 {
		for c := 0; c < n2; c++ {
			if len(coll2[c]) == 0 {
				padLabel = s.lab2[lo2+int32(c)]
				break
			}
		}
	}
	labelOfRow := func(r int) int32 {
		if r < n1 {
			return s.lab1[lo1+int32(r)]
		}
		return padLabel
	}
	labelOfCol := func(c int) int32 {
		if c < n2 {
			return s.lab2[lo2+int32(c)]
		}
		return padLabel
	}
	// Count labels on the column side, then stream rows against it.
	colCount := make(map[int32]int, n)
	for c := 0; c < n; c++ {
		colCount[labelOfCol(c)]++
	}
	for r := 0; r < n; r++ {
		l := labelOfRow(r)
		if colCount[l] > 0 {
			colCount[l]--
		} else {
			rows = append(rows, r)
		}
	}
	// Columns not consumed by the pre-match are leftovers. Recount.
	rowCount := make(map[int32]int, n)
	for r := 0; r < n; r++ {
		rowCount[labelOfRow(r)]++
	}
	for c := 0; c < n; c++ {
		l := labelOfCol(c)
		if rowCount[l] > 0 {
			rowCount[l]--
		} else {
			cols = append(cols, c)
		}
	}
	return rows, cols
}

// collections builds S(x) (Definition 6) for every real node in
// [lo, hi): the sorted multiset of the node's children's current labels.
func (s *session) collections(t *tree.Tree, lab []int32, lo, hi int32) [][]int32 {
	out := make([][]int32, hi-lo)
	for v := lo; v < hi; v++ {
		kids := t.Children(v)
		if len(kids) == 0 {
			continue
		}
		c := make([]int32, len(kids))
		for i, k := range kids {
			c[i] = lab[k]
		}
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		out[v-lo] = c
	}
	return out
}

// canonize implements Algorithm 2: it assigns dense labels to the nodes
// of both levels such that two nodes receive equal labels iff their
// children-label collections are equivalent multisets (Lemma 1). The
// collections are ordered lexicographically (size first) and ranks become
// labels, giving O(n log n) behaviour.
func canonize(coll1, coll2 [][]int32, out1, out2 []int32) {
	type entry struct {
		coll []int32
		side int // 0 = t1, 1 = t2
		idx  int
	}
	entries := make([]entry, 0, len(coll1)+len(coll2))
	for i, c := range coll1 {
		entries = append(entries, entry{c, 0, i})
	}
	for i, c := range coll2 {
		entries = append(entries, entry{c, 1, i})
	}
	sort.Slice(entries, func(i, j int) bool {
		return lessCollections(entries[i].coll, entries[j].coll)
	})
	label := int32(0)
	for i, e := range entries {
		if i > 0 && !equalCollections(entries[i-1].coll, e.coll) {
			label++
		}
		if e.side == 0 {
			out1[e.idx] = label
		} else {
			out2[e.idx] = label
		}
	}
}

// lessCollections orders collections by size then lexicographically, the
// order Algorithm 2 prescribes ("(2) < (0,0) < (0,1)").
func lessCollections(a, b []int32) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func equalCollections(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// symmetricDifference returns |A\B| + |B\A| for sorted multisets
// (Algorithm 3 line 6) via a linear merge.
func symmetricDifference(a, b []int32) int64 {
	i, j := 0, 0
	var diff int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			diff++
			i++
		default:
			diff++
			j++
		}
	}
	return diff + int64(len(a)-i) + int64(len(b)-j)
}

// Validate cross-checks a Report for internal consistency; used by tests
// and fuzzing harnesses.
func (r Report) Validate() error {
	sum := 0
	for _, lc := range r.Levels {
		if lc.Padding < 0 || lc.Matching < 0 {
			return fmt.Errorf("ted: negative cost at depth %d: %+v", lc.Depth, lc)
		}
		sum += lc.Padding + lc.Matching
	}
	if sum != r.Distance {
		return fmt.Errorf("ted: level costs sum to %d, distance is %d", sum, r.Distance)
	}
	return nil
}
