package ted

import (
	"slices"
	"sync"

	"ned/internal/hungarian"
	"ned/internal/tree"
)

// Unbounded is the budget meaning "no limit": DistanceAtMost with an
// Unbounded budget always returns the exact distance.
const Unbounded = int(^uint(0) >> 1)

// Outcome classifies how a budgeted TED* computation ended.
type Outcome uint8

const (
	// OutcomeExact: the computation ran to completion and the returned
	// value is the exact TED* distance (bit-identical to Distance),
	// whether or not it exceeds the budget.
	OutcomeExact Outcome = iota
	// OutcomePruned: the O(height) padding lower bound alone exceeded
	// the budget; no canonization or matching work was done. The
	// returned value is that bound.
	OutcomePruned
	// OutcomeAborted: the level sweep (or an in-flight Hungarian
	// matching) proved the running total must cross the budget and
	// stopped early. The returned value is a lower bound on the true
	// distance, strictly greater than the budget.
	OutcomeAborted
)

// Computer is a reusable TED* computation engine: it owns every piece of
// per-comparison scratch — canonization label arrays, the per-level
// children-collection arena, the canonize entry buffer, the leftover
// row/column lists, the flat cost matrix, and the Hungarian solver
// workspace — so repeated Distance/DistanceAtMost calls amortize to zero
// allocations. A Computer is not safe for concurrent use; pool one per
// worker goroutine (internal/ned does exactly that).
type Computer struct {
	solver hungarian.Solver

	// Labels of nodes at the previously processed depth, indexed by
	// tree-node ID; only entries for that depth are meaningful.
	lab1, lab2 []int32

	// Per-level scratch.
	arena        []int32    // backing storage for children collections
	coll1, coll2 [][]int32  // collection headers into arena
	entries      []canonEnt // canonize sort buffer
	rows, cols   []int      // leftover indices after equal-label pre-match
	counts       []int32    // label histogram for the pre-match
	cost         []int64    // flat row-major Hungarian cost matrix
	pads         []int      // per-depth padding costs P_d

	// Scratch of the profiled faithful-level fast path (profiled.go):
	// level-offset prefix sums of the two profiles and the leftover
	// labels running parallel to rows/cols during the sorted merge.
	off1p, off2p     []int32
	rowLabs, colLabs []int32
}

// NewComputer returns an empty Computer; buffers grow on first use.
func NewComputer() *Computer { return &Computer{} }

// computerPool serves the package-level Distance/DistanceReport/
// WeightedDistance entry points so even one-shot callers reuse scratch.
var computerPool = sync.Pool{New: func() any { return NewComputer() }}

// Distance is the exact TED* distance, identical to the package-level
// Distance but allocation-free after warm-up.
func (c *Computer) Distance(t1, t2 *tree.Tree) int {
	t1, t2 = orient(t1, t2)
	d, _ := c.run(t1, t2, int64(Unbounded), nil)
	return d
}

// DistanceOrdered is DistanceOrdered on this Computer's scratch.
func (c *Computer) DistanceOrdered(t1, t2 *tree.Tree) int {
	d, _ := c.run(t1, t2, int64(Unbounded), nil)
	return d
}

// DistanceAtMost computes TED* under a budget. It seeds from the padding
// lower bound, accumulates padding and matching costs level by level
// bottom-up, and bails the moment the running total plus the padding
// still owed by unprocessed levels provably crosses the budget — the
// Hungarian matchings themselves abort mid-solve once their partial
// matching cost makes the level unaffordable.
//
// The contract, relied on by every index backend:
//
//   - outcome == OutcomeExact: d is exactly Distance(t1, t2).
//   - otherwise: d > budget and d <= Distance(t1, t2), so the true
//     distance also exceeds the budget.
//
// A budget of Unbounded (or anything >= the true distance) always yields
// OutcomeExact.
func (c *Computer) DistanceAtMost(t1, t2 *tree.Tree, budget int) (d int, outcome Outcome) {
	t1, t2 = orient(t1, t2)
	return c.run(t1, t2, int64(budget), nil)
}

// DistanceAtMostOriented is DistanceAtMost for callers that have
// already placed the pair in the canonical orientation — typically by
// comparing precompiled profiles (size, height, interned AHU encoding;
// see internal/ned's filter–verify cascade) so no encoding string is
// ever derived on the hot path. lv1/lv2, when non-nil, are the pair's
// precompiled level-size vectors (tree.Profile.Levels): the padding
// seed then reads two flat []int32 instead of walking the trees. The
// budget contract is exactly DistanceAtMost's.
func (c *Computer) DistanceAtMostOriented(t1, t2 *tree.Tree, lv1, lv2 []int32, budget int) (d int, outcome Outcome) {
	return c.runLevels(t1, t2, lv1, lv2, int64(budget), nil)
}

// run executes Algorithm 1 bottom-up under a budget, optionally
// recording the per-level breakdown into rep.
func (c *Computer) run(t1, t2 *tree.Tree, budget int64, rep *Report) (int, Outcome) {
	return c.runLevels(t1, t2, nil, nil, budget, rep)
}

// runLevels is run with optional precompiled level-size vectors seeding
// the padding sweep.
func (c *Computer) runLevels(t1, t2 *tree.Tree, lv1, lv2 []int32, budget int64, rep *Report) (int, Outcome) {
	maxD := t1.Height()
	if h := t2.Height(); h > maxD {
		maxD = h
	}

	// Per-depth padding costs; their sum is the LowerBound seed, and the
	// running suffix of unprocessed levels keeps the bound tight during
	// the sweep.
	if cap(c.pads) < maxD+1 {
		c.pads = make([]int, maxD+1)
	}
	c.pads = c.pads[:maxD+1]
	remPad := 0
	if lv1 != nil && lv2 != nil {
		for d := 0; d <= maxD; d++ {
			var n1, n2 int32
			if d < len(lv1) {
				n1 = lv1[d]
			}
			if d < len(lv2) {
				n2 = lv2[d]
			}
			p := int(n1) - int(n2)
			if p < 0 {
				p = -p
			}
			c.pads[d] = p
			remPad += p
		}
	} else {
		for d := 0; d <= maxD; d++ {
			p := t1.LevelSize(d) - t2.LevelSize(d)
			if p < 0 {
				p = -p
			}
			c.pads[d] = p
			remPad += p
		}
	}
	if int64(remPad) > budget {
		return remPad, OutcomePruned
	}

	if cap(c.lab1) < t1.Size() {
		c.lab1 = make([]int32, t1.Size())
	}
	if cap(c.lab2) < t2.Size() {
		c.lab2 = make([]int32, t2.Size())
	}
	c.lab1 = c.lab1[:t1.Size()]
	c.lab2 = c.lab2[:t2.Size()]

	total := 0
	prevPad := 0
	for d := maxD; d >= 0; d-- {
		remPad -= c.pads[d]
		// Affordable slack for this level's matching cost M_d. The
		// previous iteration's bound check guarantees slack >= 0.
		slack := budget - int64(total) - int64(c.pads[d]) - int64(remPad)
		solverBudget := int64(hungarian.Inf)
		// M_d = (m - prevPad)/2 must stay <= slack, so the matching m
		// may not exceed 2*slack + prevPad + 1 (the +1 keeps the floor
		// division from rounding an abort below the budget). Huge
		// budgets whose doubled slack would overflow simply keep the
		// solver unbounded.
		if budget < int64(Unbounded) && slack < (int64(hungarian.Inf)-int64(prevPad)-1)/2 {
			if sb := 2*slack + int64(prevPad) + 1; sb < solverBudget {
				solverBudget = sb
			}
		}
		p, m, partial, ok := c.level(t1, t2, d, prevPad, solverBudget)
		if !ok {
			mlb := (partial - int64(prevPad)) / 2
			if mlb < 0 {
				mlb = 0
			}
			return total + c.pads[d] + int(mlb) + remPad, OutcomeAborted
		}
		total += p + m
		if rep != nil {
			rep.Levels = append(rep.Levels, LevelCost{Depth: d, Padding: p, Matching: m})
		}
		prevPad = p
		if int64(total)+int64(remPad) > budget {
			return total + remPad, OutcomeAborted
		}
	}
	return total, OutcomeExact
}

// level executes the six steps of Algorithm 1 for one depth and returns
// (P_d, M_d). When the Hungarian matching aborts on its budget, ok is
// false and partial carries the solver's partial matching cost (a lower
// bound on the true m(G²_d)).
func (c *Computer) level(t1, t2 *tree.Tree, d, prevPad int, solverBudget int64) (padding, matching int, partial int64, ok bool) {
	lo1, hi1 := t1.LevelRange(d)
	lo2, hi2 := t2.LevelRange(d)
	n1 := int(hi1 - lo1)
	n2 := int(hi2 - lo2)

	// Step 1: node padding (lines 2–6).
	padding = n1 - n2
	if padding < 0 {
		padding = -padding
	}
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		return padding, 0, 0, true
	}

	// Step 2: node canonization (lines 7–8, Algorithm 2). Children
	// collections use the labels assigned when depth d+1 was processed.
	c.buildCollections(t1, t2, d, lo1, hi1, lo2, hi2)
	maxLabel := c.canonize(c.lab1[lo1:hi1], c.lab2[lo2:hi2])

	// Steps 3–4: equal-label pre-match, then minimum-weight matching of
	// the mismatched residue (see the package note on the exchange
	// argument that makes the pre-match exact).
	rows, cols := c.leftovers(lo1, lo2, n1, n2, n, maxLabel)
	ln := len(rows)
	var m int64
	var assign []int
	if ln > 0 {
		if cap(c.cost) < ln*ln {
			c.cost = make([]int64, ln*ln)
		}
		cost := c.cost[:ln*ln]
		for ri, r := range rows {
			var sr []int32
			if r < n1 {
				sr = c.coll1[r]
			}
			for ci, cl := range cols {
				var sc []int32
				if cl < n2 {
					sc = c.coll2[cl]
				}
				cost[ri*ln+ci] = symmetricDifference(sr, sc)
			}
		}
		var complete bool
		m, assign, complete = c.solver.SolveAtMost(cost, ln, solverBudget)
		if !complete {
			return padding, 0, m, false
		}
	}

	// Step 5: matching cost (line 15, Equation 5).
	diff := int(m) - prevPad
	if diff < 0 {
		// Cannot happen per the correctness proof (§6); clamp defensively
		// so arithmetic noise can never produce a negative distance.
		diff = 0
	}
	matching = diff / 2

	// Step 6: node re-canonization (lines 16–19). The smaller level's
	// real nodes adopt the labels of their matched partners so the next
	// (shallower) level sees identical child-label multisets.
	if n1 < n2 {
		for ri, r := range rows {
			if r < n1 {
				c.lab1[lo1+int32(r)] = c.lab2[lo2+int32(cols[assign[ri]])]
			}
		}
	} else {
		for ri, r := range rows {
			if cl := cols[assign[ri]]; cl < n2 && r < n1 {
				c.lab2[lo2+int32(cl)] = c.lab1[lo1+int32(r)]
			}
		}
	}
	return padding, matching, 0, true
}

// buildCollections fills coll1/coll2 with S(x) (Definition 6) for every
// real node of the two levels: the sorted multiset of each node's
// children's current labels. Both header slices point into one arena
// sized exactly for the level, so nothing reallocates mid-build.
func (c *Computer) buildCollections(t1, t2 *tree.Tree, d int, lo1, hi1, lo2, hi2 int32) {
	need := t1.LevelSize(d+1) + t2.LevelSize(d+1)
	if cap(c.arena) < need {
		c.arena = make([]int32, need)
	}
	arena := c.arena[:0]
	c.coll1 = fillCollections(t1, c.lab1, lo1, hi1, c.coll1[:0], &arena)
	c.coll2 = fillCollections(t2, c.lab2, lo2, hi2, c.coll2[:0], &arena)
}

func fillCollections(t *tree.Tree, lab []int32, lo, hi int32, out [][]int32, arena *[]int32) [][]int32 {
	for v := lo; v < hi; v++ {
		kids := t.Children(v)
		if len(kids) == 0 {
			out = append(out, nil)
			continue
		}
		start := len(*arena)
		for _, k := range kids {
			*arena = append(*arena, lab[k])
		}
		coll := (*arena)[start:]
		slices.Sort(coll)
		out = append(out, coll)
	}
	return out
}

// canonEnt is one node's children collection tagged with where its label
// must be written.
type canonEnt struct {
	coll []int32
	side int8
	idx  int32
}

// canonize implements Algorithm 2: dense labels such that two nodes get
// equal labels iff their children-label collections are equivalent
// multisets (Lemma 1), ordered size-first lexicographically. Returns the
// largest label assigned.
func (c *Computer) canonize(out1, out2 []int32) int32 {
	c.entries = c.entries[:0]
	for i, coll := range c.coll1 {
		c.entries = append(c.entries, canonEnt{coll, 0, int32(i)})
	}
	for i, coll := range c.coll2 {
		c.entries = append(c.entries, canonEnt{coll, 1, int32(i)})
	}
	slices.SortFunc(c.entries, func(a, b canonEnt) int { return cmpCollections(a.coll, b.coll) })
	label := int32(0)
	for i, e := range c.entries {
		if i > 0 && !equalCollections(c.entries[i-1].coll, e.coll) {
			label++
		}
		if e.side == 0 {
			out1[e.idx] = label
		} else {
			out2[e.idx] = label
		}
	}
	return label
}

// cmpCollections orders collections by size then lexicographically, the
// order Algorithm 2 prescribes ("(2) < (0,0) < (0,1)").
func cmpCollections(a, b []int32) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// leftovers pre-matches equal-label pairs across the two padded levels
// and returns the residual row and column indices that still need the
// optimal matcher. Indices >= n1 (rows) or >= n2 (cols) denote padded
// nodes, whose label is the label shared by childless real nodes (or a
// reserved sentinel when no real node is childless). Labels are dense in
// [0, maxLabel], so the histogram is a slice (index shifted by one to
// absorb the -1 sentinel), not a map.
func (c *Computer) leftovers(lo1, lo2 int32, n1, n2, n int, maxLabel int32) (rows, cols []int) {
	padLabel := int32(-1)
	for r := 0; r < n1; r++ {
		if len(c.coll1[r]) == 0 {
			padLabel = c.lab1[lo1+int32(r)]
			break
		}
	}
	if padLabel == -1 {
		for cl := 0; cl < n2; cl++ {
			if len(c.coll2[cl]) == 0 {
				padLabel = c.lab2[lo2+int32(cl)]
				break
			}
		}
	}
	labelOfRow := func(r int) int32 {
		if r < n1 {
			return c.lab1[lo1+int32(r)]
		}
		return padLabel
	}
	labelOfCol := func(cl int) int32 {
		if cl < n2 {
			return c.lab2[lo2+int32(cl)]
		}
		return padLabel
	}
	if cap(c.counts) < int(maxLabel)+2 {
		c.counts = make([]int32, maxLabel+2)
	}
	counts := c.counts[:maxLabel+2]

	// Count labels on the column side, then stream rows against it.
	clear(counts)
	for cl := 0; cl < n; cl++ {
		counts[labelOfCol(cl)+1]++
	}
	rows = c.rows[:0]
	for r := 0; r < n; r++ {
		l := labelOfRow(r) + 1
		if counts[l] > 0 {
			counts[l]--
		} else {
			rows = append(rows, r)
		}
	}
	// Columns not consumed by the pre-match are leftovers. Recount.
	clear(counts)
	for r := 0; r < n; r++ {
		counts[labelOfRow(r)+1]++
	}
	cols = c.cols[:0]
	for cl := 0; cl < n; cl++ {
		l := labelOfCol(cl) + 1
		if counts[l] > 0 {
			counts[l]--
		} else {
			cols = append(cols, cl)
		}
	}
	c.rows, c.cols = rows, cols
	return rows, cols
}
