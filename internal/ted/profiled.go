package ted

import (
	"slices"

	"ned/internal/hungarian"
	"ned/internal/tree"
)

// This file is the profiled verify stage of the filter–verify cascade:
// a TED* computation that consumes the columnar data precompiled into
// tree.Profiles instead of re-deriving it per comparison. The key
// observation is that Algorithm 1's expensive per-level machinery —
// building and sorting children collections, the canonization sort, the
// pre-match histograms — recomputes, pair by pair, exactly the
// information the corpus-interned profiles already hold, as long as the
// level sweep has not yet ADOPTED any label (step 6 rewrites a matched
// node's label to its partner's, diverging the computation's labels
// from the interned shapes).
//
// While every processed level's residual matching was empty ("faithful"
// levels), the canonization label partition at the current level equals
// the interned shape-label partition — by induction: at the deepest
// level every node is a leaf on both sides (one class either way), and
// at each shallower level both partitions group nodes by the multiset
// of their children's classes, which agree by the induction hypothesis.
// So the fast path can, per level:
//
//   - run the equal-label pre-match as one linear merge of the two
//     per-level sorted label runs (precompiled, with the node
//     association preserved in Profile.Perm) instead of canonize +
//     histogram passes — leftovers come out identical to the scalar
//     path's, because both resolve equal-label ties by ascending node
//     index;
//   - treat padded nodes as carrying the interned leaf label (exactly
//     the scalar padLabel: the label of a childless real node), matched
//     against the earliest opposite-side leaf-labeled leftovers;
//   - build the residual cost matrix from the precompiled per-node
//     sorted children-label runs (Profile.Kids) — the symmetric
//     difference of two multisets is invariant under the label
//     bijection, so every entry equals the scalar matrix's.
//
// The first level with a non-empty residue runs its matching on that
// same (bit-identical) cost matrix, performs step-6 adoption on the
// interned labels scattered into the canonize arrays, and hands the
// remaining (shallower) levels to the scalar Computer.level — whose
// results depend only on the label partition, not the label values, so
// the total is bit-identical to DistanceAtMostOriented's: same exact
// distances, same outcome classes, same abort values. The equivalence
// is property-tested over full budget sweeps in profiled_test.go.
//
// Requirements: both profiles from one tree.Interner, and at least one
// of them Resolved — two unresolved profiles carry incomparable
// profile-local labels. Callers that cannot guarantee this get the
// plain oriented path via the guard below.

// DistanceAtMostProfiled is DistanceAtMost for callers that have
// already placed the pair in canonical orientation (as
// DistanceAtMostOriented) and hold both trees' compiled profiles. It
// returns bit-identical results to DistanceAtMostOriented — same
// distances, outcomes, and abort values — while skipping the per-level
// collection building, sorting, and canonization work on every level
// whose residual matching is empty. Falls back to the plain oriented
// path when the profiles are missing columnar data or are mutually
// unresolved.
func (c *Computer) DistanceAtMostProfiled(t1, t2 *tree.Tree, p1, p2 *tree.Profile, budget int) (int, Outcome) {
	if p1 == nil || p2 == nil || p1.KidOff == nil || p2.KidOff == nil ||
		!(p1.Resolved() || p2.Resolved()) {
		var lv1, lv2 []int32
		if p1 != nil {
			lv1 = p1.Levels
		}
		if p2 != nil {
			lv2 = p2.Levels
		}
		return c.runLevels(t1, t2, lv1, lv2, int64(budget), nil)
	}
	bud := int64(budget)
	maxD := len(p1.Levels) - 1
	if h := len(p2.Levels) - 1; h > maxD {
		maxD = h
	}

	if cap(c.pads) < maxD+1 {
		c.pads = make([]int, maxD+1)
	}
	c.pads = c.pads[:maxD+1]
	lv1, lv2 := p1.Levels, p2.Levels
	remPad := 0
	for d := 0; d <= maxD; d++ {
		var n1, n2 int32
		if d < len(lv1) {
			n1 = lv1[d]
		}
		if d < len(lv2) {
			n2 = lv2[d]
		}
		p := int(n1) - int(n2)
		if p < 0 {
			p = -p
		}
		c.pads[d] = p
		remPad += p
	}
	if int64(remPad) > bud {
		return remPad, OutcomePruned
	}

	c.off1p = prefixOffsets(c.off1p, lv1)
	c.off2p = prefixOffsets(c.off2p, lv2)

	// The label padded nodes assume: read it off the resolved side (the
	// sides agree whenever both matter — see Profile.LeafLabel).
	leaf := p1.LeafLabel
	if !p1.Resolved() {
		leaf = p2.LeafLabel
	}

	faithful := true
	total := 0
	prevPad := 0
	for d := maxD; d >= 0; d-- {
		remPad -= c.pads[d]
		slack := bud - int64(total) - int64(c.pads[d]) - int64(remPad)
		solverBudget := int64(hungarian.Inf)
		if bud < int64(Unbounded) && slack < (int64(hungarian.Inf)-int64(prevPad)-1)/2 {
			if sb := 2*slack + int64(prevPad) + 1; sb < solverBudget {
				solverBudget = sb
			}
		}
		var p, m int
		var partial int64
		var ok bool
		if faithful {
			p, m, partial, ok, faithful = c.levelFaithful(t1, t2, p1, p2, leaf, d, prevPad, solverBudget)
		} else {
			p, m, partial, ok = c.level(t1, t2, d, prevPad, solverBudget)
		}
		if !ok {
			mlb := (partial - int64(prevPad)) / 2
			if mlb < 0 {
				mlb = 0
			}
			return total + c.pads[d] + int(mlb) + remPad, OutcomeAborted
		}
		total += p + m
		prevPad = p
		if int64(total)+int64(remPad) > bud {
			return total + remPad, OutcomeAborted
		}
	}
	return total, OutcomeExact
}

// prefixOffsets fills dst with the prefix sums of levels: dst[d] is the
// ID of the first node at depth d (level-order trees).
func prefixOffsets(dst, levels []int32) []int32 {
	if cap(dst) < len(levels) {
		dst = make([]int32, len(levels))
	}
	dst = dst[:len(levels)]
	off := int32(0)
	for d, w := range levels {
		dst[d] = off
		off += w
	}
	return dst
}

// levelFaithful executes one level of Algorithm 1 on precompiled
// profile data, valid while no deeper level has adopted labels. Returns
// the scalar level's exact (padding, matching) — or, on a solver abort,
// the partial matching cost — plus stillFaithful=false once a non-empty
// residue forces adoption (the caller switches to Computer.level for
// the remaining, shallower levels; this level scatters its interned
// labels into the canonize arrays and adopts on them first, so the
// scalar levels see exactly the label partition they would have built
// themselves).
func (c *Computer) levelFaithful(t1, t2 *tree.Tree, p1, p2 *tree.Profile, leaf int32, d, prevPad int, solverBudget int64) (padding, matching int, partial int64, ok, stillFaithful bool) {
	var la, lb, perm1, perm2 []int32
	if d < len(p1.Levels) {
		o, w := c.off1p[d], p1.Levels[d]
		la, perm1 = p1.Labels[o:o+w], p1.Perm[o:o+w]
	}
	if d < len(p2.Levels) {
		o, w := c.off2p[d], p2.Levels[d]
		lb, perm2 = p2.Labels[o:o+w], p2.Perm[o:o+w]
	}
	n1, n2 := len(la), len(lb)
	padding = n1 - n2
	if padding < 0 {
		padding = -padding
	}
	n := n1
	if n2 > n {
		n = n2
	}
	if n == 0 {
		return padding, 0, 0, true, true
	}

	// Equal-label pre-match as one merge of the sorted runs. Leftovers
	// come out (label, node)-ordered; within one label that is ascending
	// node order — the same nodes the scalar histogram stream leaves
	// over (it matches earliest-first too).
	rows, cols := c.rows[:0], c.cols[:0]
	rowLabs, colLabs := c.rowLabs[:0], c.colLabs[:0]
	i, j := 0, 0
	for i < n1 && j < n2 {
		switch {
		case la[i] == lb[j]:
			i++
			j++
		case la[i] < lb[j]:
			rows = append(rows, int(perm1[i]))
			rowLabs = append(rowLabs, la[i])
			i++
		default:
			cols = append(cols, int(perm2[j]))
			colLabs = append(colLabs, lb[j])
			j++
		}
	}
	for ; i < n1; i++ {
		rows = append(rows, int(perm1[i]))
		rowLabs = append(rowLabs, la[i])
	}
	for ; j < n2; j++ {
		cols = append(cols, int(perm2[j]))
		colLabs = append(colLabs, lb[j])
	}

	// Padded nodes carry the leaf label (scalar padLabel: the label of
	// a childless real node; absent any leaf-labeled leftover on the
	// opposite side the pads simply match nothing, exactly like the
	// scalar sentinel). They consume the earliest opposite-side
	// leaf-labeled leftovers — the scalar pre-match streams real nodes
	// before pads, so its surviving leftovers are the latest ones too —
	// and the unconsumed pads become leftovers at the padded indices.
	if n1 != n2 {
		pc := n - n1
		oppLabs, opp := colLabs, cols
		if n2 < n1 {
			pc = n - n2
			oppLabs, opp = rowLabs, rows
		}
		lo, found := slices.BinarySearch(oppLabs, leaf)
		hi := lo
		for hi < len(oppLabs) && oppLabs[hi] == leaf {
			hi++
		}
		take := 0
		if found {
			take = hi - lo
			if take > pc {
				take = pc
			}
			opp = append(opp[:lo], opp[lo+take:]...)
			oppLabs = append(oppLabs[:lo], oppLabs[lo+take:]...)
		}
		if n1 < n2 {
			cols, colLabs = opp, oppLabs
			for r := n1 + take; r < n; r++ {
				rows = append(rows, r)
			}
		} else {
			rows, rowLabs = opp, oppLabs
			for cl := n2 + take; cl < n; cl++ {
				cols = append(cols, cl)
			}
		}
	}
	c.rows, c.cols = rows, cols
	c.rowLabs, c.colLabs = rowLabs, colLabs

	ln := len(rows)
	if ln == 0 {
		return padding, 0, 0, true, true
	}

	// Non-empty residue: solve it on the precompiled children-label
	// runs. Rows and columns in ascending index order — the scalar
	// stream order — so the cost matrix, and with it the solver's
	// matching, abort behavior, and partial costs, are bit-identical.
	slices.Sort(rows)
	slices.Sort(cols)
	if cap(c.cost) < ln*ln {
		c.cost = make([]int64, ln*ln)
	}
	cost := c.cost[:ln*ln]
	// A side shorter than depth d has no offset entry — and no real
	// nodes here (its n is 0), so the guards below never read the base.
	var lo1, lo2 int32
	if d < len(c.off1p) {
		lo1 = c.off1p[d]
	}
	if d < len(c.off2p) {
		lo2 = c.off2p[d]
	}
	for ri, r := range rows {
		var sr []int32
		if r < n1 {
			v := lo1 + int32(r)
			sr = p1.Kids[p1.KidOff[v]:p1.KidOff[v+1]]
		}
		for ci, cl := range cols {
			var sc []int32
			if cl < n2 {
				v := lo2 + int32(cl)
				sc = p2.Kids[p2.KidOff[v]:p2.KidOff[v+1]]
			}
			cost[ri*ln+ci] = symmetricDifference(sr, sc)
		}
	}
	m64, assign, complete := c.solver.SolveAtMost(cost, ln, solverBudget)
	if !complete {
		return padding, 0, m64, false, true
	}

	// The matching adopts labels across sides, so the level's labels
	// diverge from the interned shapes here: scatter this level's
	// interned labels into the canonize arrays, adopt on them (step 6 of
	// the scalar level, verbatim), and hand the shallower levels to the
	// scalar path. Deeper levels' label arrays are never read again.
	if cap(c.lab1) < t1.Size() {
		c.lab1 = make([]int32, t1.Size())
	}
	if cap(c.lab2) < t2.Size() {
		c.lab2 = make([]int32, t2.Size())
	}
	c.lab1 = c.lab1[:t1.Size()]
	c.lab2 = c.lab2[:t2.Size()]
	for i, l := range la {
		c.lab1[lo1+perm1[i]] = l
	}
	for j, l := range lb {
		c.lab2[lo2+perm2[j]] = l
	}
	if n1 < n2 {
		for ri, r := range rows {
			if r < n1 {
				c.lab1[lo1+int32(r)] = c.lab2[lo2+int32(cols[assign[ri]])]
			}
		}
	} else {
		for ri, r := range rows {
			if cl := cols[assign[ri]]; cl < n2 && r < n1 {
				c.lab2[lo2+int32(cl)] = c.lab1[lo1+int32(r)]
			}
		}
	}
	diff := int(m64) - prevPad
	if diff < 0 {
		diff = 0
	}
	return padding, diff / 2, 0, true, false
}
