package ted

import (
	"fmt"
	"math/rand"
	"testing"

	"ned/internal/tree"
)

// TestDistanceAtMostUnboundedEqualsDistance is the core budget
// equivalence property: with no budget, the budgeted path must be
// bit-identical to the plain Distance on random trees.
func TestDistanceAtMostUnboundedEqualsDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewComputer()
	for trial := 0; trial < 300; trial++ {
		t1 := tree.Random(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		t2 := tree.Random(rng, 1+rng.Intn(40), 1+rng.Intn(5))
		want := Distance(t1, t2)
		got, out := c.DistanceAtMost(t1, t2, Unbounded)
		if out != OutcomeExact {
			t.Fatalf("trial %d: unbounded budget gave outcome %d", trial, out)
		}
		if got != want {
			t.Fatalf("trial %d: DistanceAtMost(∞) = %d, Distance = %d", trial, got, want)
		}
	}
}

// TestDistanceAtMostBudgetContract sweeps every budget from 0 past the
// true distance on random pairs: an exact outcome must reproduce
// Distance bit-for-bit, and any early exit must (a) return a value
// strictly above the budget that (b) never exceeds the true distance —
// so an early exit proves the true distance exceeds the budget.
func TestDistanceAtMostBudgetContract(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	c := NewComputer()
	for trial := 0; trial < 120; trial++ {
		t1 := tree.Random(rng, 1+rng.Intn(35), 1+rng.Intn(5))
		t2 := tree.Random(rng, 1+rng.Intn(35), 1+rng.Intn(5))
		want := Distance(t1, t2)
		for budget := 0; budget <= want+2; budget++ {
			got, out := c.DistanceAtMost(t1, t2, budget)
			if out == OutcomeExact {
				if got != want {
					t.Fatalf("trial %d budget %d: exact %d != Distance %d", trial, budget, got, want)
				}
				continue
			}
			if got <= budget {
				t.Fatalf("trial %d budget %d: early exit returned %d <= budget", trial, budget, got)
			}
			if got > want {
				t.Fatalf("trial %d budget %d: early exit bound %d exceeds true distance %d", trial, budget, got, want)
			}
			if want <= budget {
				t.Fatalf("trial %d budget %d: early exit but true distance %d fits the budget", trial, budget, want)
			}
		}
		// At exactly the true distance the computation must go exact.
		if got, out := c.DistanceAtMost(t1, t2, want); out != OutcomeExact || got != want {
			t.Fatalf("trial %d: budget == distance gave (%d, %d)", trial, got, out)
		}
	}
}

// TestDistanceAtMostWideLevels drives the in-matching Hungarian abort:
// wide same-size levels force large matchings whose partial cost crosses
// small budgets mid-solve.
func TestDistanceAtMostWideLevels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := NewComputer()
	for trial := 0; trial < 20; trial++ {
		t1 := tree.RandomShape(rng, []int{1, 4, 12, 24})
		t2 := tree.RandomShape(rng, []int{1, 4, 12, 24})
		want := Distance(t1, t2)
		for _, budget := range []int{0, 1, want / 2, want - 1, want, want + 5} {
			if budget < 0 {
				continue
			}
			got, out := c.DistanceAtMost(t1, t2, budget)
			if out == OutcomeExact {
				if got != want {
					t.Fatalf("trial %d budget %d: exact %d != %d", trial, budget, got, want)
				}
			} else if got <= budget || got > want {
				t.Fatalf("trial %d budget %d: bad bound %d (true %d)", trial, budget, got, want)
			}
		}
	}
}

// TestComputerReuseMatchesFresh checks that a Computer's recycled
// scratch never leaks state between comparisons: interleaved pairs give
// the same answers as fresh computations.
func TestComputerReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	c := NewComputer()
	pairs := make([][2]*tree.Tree, 40)
	for i := range pairs {
		pairs[i] = [2]*tree.Tree{
			tree.Random(rng, 1+rng.Intn(30), 1+rng.Intn(4)),
			tree.Random(rng, 1+rng.Intn(30), 1+rng.Intn(4)),
		}
	}
	want := make([]int, len(pairs))
	for i, p := range pairs {
		want[i] = Distance(p[0], p[1])
	}
	for round := 0; round < 3; round++ {
		for i, p := range pairs {
			if got := c.Distance(p[0], p[1]); got != want[i] {
				t.Fatalf("round %d pair %d: reused computer gave %d, want %d", round, i, got, want[i])
			}
		}
	}
}

// TestDistanceAtMostSeedsFromLowerBound: a budget below the padding
// lower bound must be rejected without any matching work.
func TestDistanceAtMostSeedsFromLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	c := NewComputer()
	for trial := 0; trial < 60; trial++ {
		t1 := tree.Random(rng, 5+rng.Intn(30), 1+rng.Intn(4))
		t2 := tree.Random(rng, 5+rng.Intn(30), 1+rng.Intn(4))
		lb := LowerBound(t1, t2)
		if lb == 0 {
			continue
		}
		d, out := c.DistanceAtMost(t1, t2, lb-1)
		if out != OutcomePruned {
			t.Fatalf("trial %d: budget %d below bound %d gave outcome %d", trial, lb-1, lb, out)
		}
		if d != lb {
			t.Fatalf("trial %d: pruned value %d, want the lower bound %d", trial, d, lb)
		}
	}
}

func BenchmarkComputerDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	t1 := tree.RandomShape(rng, []int{1, 8, 40, 120})
	t2 := tree.RandomShape(rng, []int{1, 8, 44, 110})
	c := NewComputer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Distance(t1, t2)
	}
}

// ExampleComputer demonstrates the budget-aware hot path: one Computer
// per worker, exact distances when affordable, early exits otherwise.
func ExampleComputer() {
	star := tree.Star(9) // root + 8 leaves
	path := tree.Path(9) // a chain of 9 nodes
	c := NewComputer()

	exact := c.Distance(star, path)
	fmt.Println("exact:", exact)

	// A KNN search whose current kth-best is 3 only needs to know
	// whether this pair beats it; the computation stops the moment it
	// provably cannot.
	d, outcome := c.DistanceAtMost(star, path, 3)
	fmt.Println("within budget 3:", outcome == OutcomeExact, "bound:", d > 3)
	// Output:
	// exact: 15
	// within budget 3: false bound: true
}
