package tree

import (
	"math/rand"
	"reflect"
	"slices"
	"testing"
)

// exportTestTrees builds a varied batch of trees sharing one interner.
func exportTestTrees(t *testing.T, n int, seed int64) ([]*Tree, *Interner) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := NewInterner()
	var trees []*Tree
	trees = append(trees, MustNew([]int32{-1})) // single node
	trees = append(trees, Path(5), Star(6))
	for i := 0; i < n; i++ {
		trees = append(trees, Random(rng, 2+rng.Intn(40), 1+rng.Intn(4)))
	}
	for _, tr := range trees {
		in.Profile(tr)
	}
	return trees, in
}

// The shape table must round-trip to a dictionary with identical label
// assignments and identical AHU encodings.
func TestInternerShapesRoundTrip(t *testing.T) {
	trees, in := exportTestTrees(t, 60, 7)
	kidOff, kids := in.ExportShapes()
	in2, err := NewInternerFromShapes(kidOff, kids)
	if err != nil {
		t.Fatalf("NewInternerFromShapes: %v", err)
	}
	if in2.Len() != in.Len() {
		t.Fatalf("rebuilt dictionary has %d shapes, want %d", in2.Len(), in.Len())
	}
	// Re-profiling the same trees against the rebuilt dictionary must
	// reproduce identical labels without interning anything new.
	for i, tr := range trees {
		p1 := in.Profile(tr.Clone())
		p2 := in2.Profile(tr.Clone())
		if !reflect.DeepEqual(p1.Labels, p2.Labels) || p1.Canon != p2.Canon {
			t.Fatalf("tree %d profiles diverged across dictionary round-trip", i)
		}
	}
	if in2.Len() != in.Len() {
		t.Fatalf("re-profiling grew the rebuilt dictionary to %d shapes, want %d", in2.Len(), in.Len())
	}
	// Determinism: exporting twice yields the same table.
	off2, kids2 := in.ExportShapes()
	if !reflect.DeepEqual(kidOff, off2) || !reflect.DeepEqual(kids, kids2) {
		t.Fatal("ExportShapes is not deterministic")
	}
}

func TestNewInternerFromShapesRejectsBadTables(t *testing.T) {
	cases := []struct {
		name   string
		kidOff []int32
		kids   []int32
	}{
		{"empty offsets", nil, nil},
		{"offset not zero", []int32{1, 2}, []int32{0}},
		{"length mismatch", []int32{0, 2}, []int32{0}},
		{"negative count", []int32{0, 2, 1}, []int32{0, 0}},
		{"forward reference", []int32{0, 0, 1}, []int32{1}},
		{"self reference", []int32{0, 0, 1}, []int32{1}},
		{"unsorted kids", []int32{0, 0, 0, 0, 2}, []int32{1, 0}},
		{"duplicate shape", []int32{0, 0, 0}, nil},
	}
	for _, tc := range cases {
		if _, err := NewInternerFromShapes(tc.kidOff, tc.kids); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// ProfileFromParts must rebuild a profile bit-identical to a fresh
// compile of the same tree against the same dictionary.
func TestProfileFromPartsRoundTrip(t *testing.T) {
	trees, in := exportTestTrees(t, 60, 11)
	kidOff, kids := in.ExportShapes()
	in2, err := NewInternerFromShapes(kidOff, kids)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trees {
		want := in.Profile(tr)
		clone := tr.Clone()
		got, err := in2.ProfileFromParts(clone,
			append([]int32(nil), want.Labels...),
			append([]int32(nil), want.Perm...),
			append([]int32(nil), want.Kids...))
		if err != nil {
			t.Fatalf("tree %d: ProfileFromParts: %v", i, err)
		}
		if !slices.Equal(got.Levels, want.Levels) ||
			!slices.Equal(got.Labels, want.Labels) ||
			!slices.Equal(got.Perm, want.Perm) ||
			!slices.Equal(got.Kids, want.Kids) ||
			!slices.Equal(got.KidOff, want.KidOff) ||
			got.Size != want.Size || got.MaxLevel != want.MaxLevel ||
			got.LeafLabel != want.LeafLabel || got.Canon != want.Canon {
			t.Fatalf("tree %d: reconstructed profile differs:\n got %+v\nwant %+v", i, got, want)
		}
		if !got.Resolved() {
			t.Fatalf("tree %d: reconstructed profile unresolved", i)
		}
		// The reconstruction must have primed the tree's profile cache.
		if c := clone.profCache.Load(); c == nil || c.p != got {
			t.Fatalf("tree %d: profile cache not primed", i)
		}
	}
}

func TestProfileFromPartsRejectsBadColumns(t *testing.T) {
	in := NewInterner()
	tr := MustNew([]int32{-1, 0, 0, 1})
	p := in.Profile(tr)
	dup := func(s []int32) []int32 { return append([]int32(nil), s...) }
	if _, err := in.ProfileFromParts(tr, dup(p.Labels[:2]), dup(p.Perm), dup(p.Kids)); err == nil {
		t.Error("short labels accepted")
	}
	if _, err := in.ProfileFromParts(tr, dup(p.Labels), dup(p.Perm), dup(p.Kids[:1])); err == nil {
		t.Error("short kids accepted")
	}
	bad := dup(p.Labels)
	bad[0] = int32(in.Len()) + 5
	if _, err := in.ProfileFromParts(tr, bad, dup(p.Perm), dup(p.Kids)); err == nil {
		t.Error("out-of-dictionary label accepted")
	}
	bad = dup(p.Labels)
	bad[0] = -1
	if _, err := in.ProfileFromParts(tr, bad, dup(p.Perm), dup(p.Kids)); err == nil {
		t.Error("negative label accepted")
	}
	badPerm := dup(p.Perm)
	badPerm[1] = 99
	if _, err := in.ProfileFromParts(tr, dup(p.Labels), badPerm, dup(p.Kids)); err == nil {
		t.Error("out-of-level perm accepted")
	}
	// Unsorted labels within a level: nodes 1 and 2 share level 1.
	unsorted := dup(p.Labels)
	if unsorted[1] != unsorted[2] {
		unsorted[1], unsorted[2] = unsorted[2], unsorted[1]
		if _, err := in.ProfileFromParts(tr, unsorted, dup(p.Perm), dup(p.Kids)); err == nil {
			t.Error("unsorted level labels accepted")
		}
	}
}
