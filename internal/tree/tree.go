// Package tree implements the unordered rooted trees that act as node
// signatures in NED: the unlabeled unordered k-adjacent tree of §3.1
// (Definitions 1 and 2 of the paper), together with AHU canonical
// encoding, isomorphism testing, and deterministic random generators used
// by tests and benchmarks.
//
// Trees are stored in level order: node 0 is the root and nodes of each
// depth occupy a contiguous ID range, which is exactly the layout the
// TED* algorithm consumes level by level.
package tree

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Tree is an unordered rooted tree in level order. Node 0 is the root;
// Parent[0] == -1. Depth[v] is the number of edges from the root, and
// nodes are sorted by depth: Depth is non-decreasing in node ID.
// The zero value is not a valid tree; use New or the builders below.
type Tree struct {
	parent []int32
	depth  []int32

	// levelOff[d] is the index of the first node at depth d;
	// levelOff[height+1] == len(parent).
	levelOff []int32

	// children in CSR form, derived from parent.
	childOff []int32
	childIDs []int32

	// canon caches the AHU canonical encoding. Signatures are queried
	// repeatedly (every canonical orientation of a TED* pair may consult
	// it), so it is derived once, lazily, and shared by concurrent
	// queries.
	canonOnce sync.Once
	canon     string
	canonSet  atomic.Bool

	// profCache is the single-slot cascade-profile cache behind
	// Interner.ProfileCached/ProfileQueryCached: query signatures are
	// typically evaluated against one corpus many times, and
	// recompiling the profile per query would dominate small queries.
	// Keyed by the owning Interner's process-unique ID — not a pointer,
	// so a retained signature tree never pins a dropped corpus
	// dictionary — and a tree queried against several corpora stays
	// correct (the slot just thrashes).
	profCache atomic.Pointer[cachedProfile]
}

// cachedProfile pairs a compiled profile with the identity of the
// dictionary it was compiled against and the dictionary's size at
// compile time. A fully-resolved profile (every label a dictionary ID)
// stays valid forever; one carrying query-local labels goes stale the
// moment the dictionary interns ANY new shape — it might be one of the
// profile's local ones — so a hit on an unresolved profile must
// revalidate against the current dictionary size (the dictionary only
// grows, making the size an exact change detector).
type cachedProfile struct {
	dict    uint64
	dictLen int
	p       *Profile
}

// HasCanon reports whether the AHU canonical encoding has been derived
// (and cached) for this tree yet. The dynamic-corpus tests use it to
// assert that graph updates invalidate only the trees of the affected
// ≤k-hop neighborhoods: untouched signatures must keep their cache.
func (t *Tree) HasCanon() bool { return t.canonSet.Load() }

// New constructs a Tree from a parent vector. parent[0] must be -1 and
// every other entry must point to an earlier node (level order). New
// returns an error when the vector violates those invariants.
func New(parent []int32) (*Tree, error) {
	if len(parent) == 0 {
		return nil, fmt.Errorf("tree: empty parent vector")
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("tree: root parent must be -1, got %d", parent[0])
	}
	t := &Tree{parent: append([]int32(nil), parent...)}
	t.depth = make([]int32, len(parent))
	for v := 1; v < len(parent); v++ {
		p := parent[v]
		if p < 0 || int(p) >= v {
			return nil, fmt.Errorf("tree: node %d has invalid parent %d (must precede it)", v, p)
		}
		t.depth[v] = t.depth[p] + 1
		if t.depth[v] < t.depth[v-1] {
			return nil, fmt.Errorf("tree: nodes not in level order at %d", v)
		}
	}
	t.buildIndexes()
	return t, nil
}

// MustNew is New but panics on malformed input; for literals in tests.
func MustNew(parent []int32) *Tree {
	t, err := New(parent)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *Tree) buildIndexes() {
	n := len(t.parent)
	height := int(t.depth[n-1])
	t.levelOff = make([]int32, height+2)
	for _, d := range t.depth {
		t.levelOff[d+1]++
	}
	for d := 1; d <= height+1; d++ {
		t.levelOff[d] += t.levelOff[d-1]
	}

	t.childOff = make([]int32, n+1)
	for v := 1; v < n; v++ {
		t.childOff[t.parent[v]+1]++
	}
	for v := 1; v <= n; v++ {
		t.childOff[v] += t.childOff[v-1]
	}
	t.childIDs = make([]int32, n-1)
	cursor := make([]int32, n)
	copy(cursor, t.childOff[:n])
	for v := 1; v < n; v++ {
		p := t.parent[v]
		t.childIDs[cursor[p]] = int32(v)
		cursor[p]++
	}
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.parent) }

// Height returns the depth of the deepest node (a single root has height 0).
func (t *Tree) Height() int { return int(t.depth[len(t.depth)-1]) }

// Parent returns the parent of v, or -1 for the root.
func (t *Tree) Parent(v int32) int32 { return t.parent[v] }

// Depth returns the depth of v.
func (t *Tree) Depth(v int32) int32 { return t.depth[v] }

// Children returns the children of v. The slice aliases internal storage.
func (t *Tree) Children(v int32) []int32 {
	return t.childIDs[t.childOff[v]:t.childOff[v+1]]
}

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v int32) int {
	return int(t.childOff[v+1] - t.childOff[v])
}

// Level returns the node IDs at depth d (contiguous by construction).
// An out-of-range depth yields an empty slice.
func (t *Tree) Level(d int) []int32 {
	if d < 0 || d >= len(t.levelOff)-1 {
		return nil
	}
	lo, hi := t.levelOff[d], t.levelOff[d+1]
	ids := make([]int32, hi-lo)
	for i := range ids {
		ids[i] = lo + int32(i)
	}
	return ids
}

// LevelSize returns the number of nodes at depth d.
func (t *Tree) LevelSize(d int) int {
	if d < 0 || d >= len(t.levelOff)-1 {
		return 0
	}
	return int(t.levelOff[d+1] - t.levelOff[d])
}

// LevelRange returns the half-open node-ID interval [lo, hi) at depth d.
func (t *Tree) LevelRange(d int) (lo, hi int32) {
	if d < 0 || d >= len(t.levelOff)-1 {
		return 0, 0
	}
	return t.levelOff[d], t.levelOff[d+1]
}

// Truncate returns the subtree of nodes with depth <= maxDepth. With the
// convention used throughout this repo, the k-adjacent tree T(v, k) is
// the BFS tree truncated at maxDepth = k: the root plus k levels of
// neighbors, so that k means "hops of neighbors considered" (§10).
func (t *Tree) Truncate(maxDepth int) *Tree {
	if maxDepth >= t.Height() {
		return t
	}
	hi := t.levelOff[maxDepth+1]
	return MustNew(t.parent[:hi])
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	n := 0
	for v := 0; v < t.Size(); v++ {
		if t.NumChildren(int32(v)) == 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree { return MustNew(t.parent) }

// ParentVector returns a copy of the level-order parent vector.
func (t *Tree) ParentVector() []int32 { return append([]int32(nil), t.parent...) }

// String renders a compact single-line description.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{%d nodes, height %d}", t.Size(), t.Height())
}

// Pretty renders an indented multi-line view, children sorted by subtree
// canonical form so isomorphic trees print identically.
func (t *Tree) Pretty() string {
	var sb strings.Builder
	var rec func(v int32, indent int)
	rec = func(v int32, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&sb, "%d\n", v)
		kids := append([]int32(nil), t.Children(v)...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			rec(c, indent+1)
		}
	}
	rec(0, 0)
	return sb.String()
}
