// Package tree implements the unordered rooted trees that act as node
// signatures in NED: the unlabeled unordered k-adjacent tree of §3.1
// (Definitions 1 and 2 of the paper), together with AHU canonical
// encoding, isomorphism testing, and deterministic random generators used
// by tests and benchmarks.
//
// Trees are stored in level order: node 0 is the root and nodes of each
// depth occupy a contiguous ID range, which is exactly the layout the
// TED* algorithm consumes level by level.
package tree

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Tree is an unordered rooted tree in level order. Node 0 is the root;
// Parent[0] == -1. Depth[v] is the number of edges from the root, and
// nodes are sorted by depth: Depth is non-decreasing in node ID.
// The zero value is not a valid tree; use New or the builders below.
type Tree struct {
	parent []int32
	depth  []int32

	// levelOff[d] is the index of the first node at depth d;
	// levelOff[height+1] == len(parent).
	levelOff []int32

	// children in CSR form, derived from parent.
	childOff []int32
	childIDs []int32

	// canon caches the AHU canonical encoding. Signatures are queried
	// repeatedly (every canonical orientation of a TED* pair may consult
	// it), so it is derived once, lazily, and shared by concurrent
	// queries.
	canonOnce sync.Once
	canon     string
	canonSet  atomic.Bool

	// profCache is the single-slot cascade-profile cache behind
	// Interner.ProfileCached/ProfileQueryCached: query signatures are
	// typically evaluated against one corpus many times, and
	// recompiling the profile per query would dominate small queries.
	// Keyed by the owning Interner's process-unique ID — not a pointer,
	// so a retained signature tree never pins a dropped corpus
	// dictionary — and a tree queried against several corpora stays
	// correct (the slot just thrashes).
	profCache atomic.Pointer[cachedProfile]
}

// cachedProfile pairs a compiled profile with the identity of the
// dictionary it was compiled against and the dictionary's size at
// compile time. A fully-resolved profile (every label a dictionary ID)
// stays valid forever; one carrying query-local labels goes stale the
// moment the dictionary interns ANY new shape — it might be one of the
// profile's local ones — so a hit on an unresolved profile must
// revalidate against the current dictionary size (the dictionary only
// grows, making the size an exact change detector).
type cachedProfile struct {
	dict    uint64
	dictLen int
	p       *Profile
}

// HasCanon reports whether the AHU canonical encoding has been derived
// (and cached) for this tree yet. The dynamic-corpus tests use it to
// assert that graph updates invalidate only the trees of the affected
// ≤k-hop neighborhoods: untouched signatures must keep their cache.
func (t *Tree) HasCanon() bool { return t.canonSet.Load() }

// Slab bulk-allocates int32 backing storage for batches of trees: a
// segment load reconstructing thousands of small trees pays one large
// allocation per chunk instead of several small ones per tree. Alloc
// never reuses memory — every returned slice is freshly zeroed make()
// storage carved from the current chunk — so slab-built trees are
// indistinguishable from heap-built ones; the slab is an allocation
// batcher, not a pool. The zero value is ready. Not safe for
// concurrent use: give each decoding worker its own.
type Slab struct{ free []int32 }

// slabChunk is the slab allocation quantum: 64K int32s (256 KiB).
const slabChunk = 64 << 10

// Alloc returns a zeroed int32 slice of length and capacity n. A nil
// receiver degrades to plain make, so callers thread an optional slab
// without branching.
func (s *Slab) Alloc(n int) []int32 {
	if s == nil || n >= slabChunk {
		return make([]int32, n)
	}
	if n > len(s.free) {
		s.free = make([]int32, slabChunk)
	}
	out := s.free[:n:n]
	s.free = s.free[n:]
	return out
}

// New constructs a Tree from a parent vector. parent[0] must be -1 and
// every other entry must point to an earlier node (level order). New
// returns an error when the vector violates those invariants.
func New(parent []int32) (*Tree, error) {
	if len(parent) == 0 {
		return nil, fmt.Errorf("tree: empty parent vector")
	}
	return NewOwned(append([]int32(nil), parent...), nil)
}

// NewOwned is New without the defensive copy: the tree takes ownership
// of parent (which must not be mutated afterwards) and carves its
// derived arrays from s when s is non-nil. This is the bulk-decode
// path — internal/segment owns every parent vector it just decoded and
// builds thousands of trees per load; everyone else wants New.
func NewOwned(parent []int32, s *Slab) (*Tree, error) {
	if len(parent) == 0 {
		return nil, fmt.Errorf("tree: empty parent vector")
	}
	if parent[0] != -1 {
		return nil, fmt.Errorf("tree: root parent must be -1, got %d", parent[0])
	}
	n := len(parent)
	t := &Tree{parent: parent}
	// One combined zeroed allocation for depth, childOff, and childIDs
	// (full-capacity subslices, so an append on one can never bleed into
	// the next); levelOff is carved separately once the height is known.
	buf := s.Alloc(n + (n + 1) + (n - 1))
	t.depth = buf[0:n:n]
	t.childOff = buf[n : 2*n+1 : 2*n+1]
	t.childIDs = buf[2*n+1:]
	depth, childOff := t.depth, t.childOff
	// Single validation pass also counts children and detects BFS order
	// (parent non-decreasing), the layout every extractor and the
	// segment writer emit, which admits a cursor-free CSR fill below.
	bfsOrder := true
	for v := 1; v < n; v++ {
		p := parent[v]
		if p < 0 || int(p) >= v {
			return nil, fmt.Errorf("tree: node %d has invalid parent %d (must precede it)", v, p)
		}
		depth[v] = depth[p] + 1
		if depth[v] < depth[v-1] {
			return nil, fmt.Errorf("tree: nodes not in level order at %d", v)
		}
		childOff[p+1]++
		bfsOrder = bfsOrder && p >= parent[v-1]
	}

	// Level offsets from the depth boundaries: depth is non-decreasing
	// and (validated above) steps by exactly one, so each depth d ≥ 1
	// starts at the single index where depth first reaches d.
	height := int(depth[n-1])
	t.levelOff = s.Alloc(height + 2)
	t.levelOff[height+1] = int32(n)
	for v := 1; v < n; v++ {
		if depth[v] != depth[v-1] {
			t.levelOff[depth[v]] = int32(v)
		}
	}

	for v := 1; v <= n; v++ {
		childOff[v] += childOff[v-1]
	}
	if bfsOrder {
		// Children sorted by (parent, id) are exactly 1..n-1 in order.
		for i := range t.childIDs {
			t.childIDs[i] = int32(i + 1)
		}
		return t, nil
	}
	// General level order: fill childIDs using childOff[p] itself as the
	// write cursor; the advancement leaves childOff[v] holding the
	// original childOff[v+1], which one backward shift undoes — no
	// scratch cursor array.
	for v := 1; v < n; v++ {
		p := parent[v]
		t.childIDs[childOff[p]] = int32(v)
		childOff[p]++
	}
	for v := n; v >= 1; v-- {
		childOff[v] = childOff[v-1]
	}
	childOff[0] = 0
	return t, nil
}

// MustNew is New but panics on malformed input; for literals in tests.
func MustNew(parent []int32) *Tree {
	t, err := New(parent)
	if err != nil {
		panic(err)
	}
	return t
}

// Size returns the number of nodes.
func (t *Tree) Size() int { return len(t.parent) }

// Height returns the depth of the deepest node (a single root has height 0).
func (t *Tree) Height() int { return int(t.depth[len(t.depth)-1]) }

// Parent returns the parent of v, or -1 for the root.
func (t *Tree) Parent(v int32) int32 { return t.parent[v] }

// Depth returns the depth of v.
func (t *Tree) Depth(v int32) int32 { return t.depth[v] }

// Children returns the children of v. The slice aliases internal storage.
func (t *Tree) Children(v int32) []int32 {
	return t.childIDs[t.childOff[v]:t.childOff[v+1]]
}

// NumChildren returns the number of children of v.
func (t *Tree) NumChildren(v int32) int {
	return int(t.childOff[v+1] - t.childOff[v])
}

// Level returns the node IDs at depth d (contiguous by construction).
// An out-of-range depth yields an empty slice.
func (t *Tree) Level(d int) []int32 {
	if d < 0 || d >= len(t.levelOff)-1 {
		return nil
	}
	lo, hi := t.levelOff[d], t.levelOff[d+1]
	ids := make([]int32, hi-lo)
	for i := range ids {
		ids[i] = lo + int32(i)
	}
	return ids
}

// LevelSize returns the number of nodes at depth d.
func (t *Tree) LevelSize(d int) int {
	if d < 0 || d >= len(t.levelOff)-1 {
		return 0
	}
	return int(t.levelOff[d+1] - t.levelOff[d])
}

// LevelRange returns the half-open node-ID interval [lo, hi) at depth d.
func (t *Tree) LevelRange(d int) (lo, hi int32) {
	if d < 0 || d >= len(t.levelOff)-1 {
		return 0, 0
	}
	return t.levelOff[d], t.levelOff[d+1]
}

// Truncate returns the subtree of nodes with depth <= maxDepth. With the
// convention used throughout this repo, the k-adjacent tree T(v, k) is
// the BFS tree truncated at maxDepth = k: the root plus k levels of
// neighbors, so that k means "hops of neighbors considered" (§10).
func (t *Tree) Truncate(maxDepth int) *Tree {
	if maxDepth >= t.Height() {
		return t
	}
	hi := t.levelOff[maxDepth+1]
	return MustNew(t.parent[:hi])
}

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int {
	n := 0
	for v := 0; v < t.Size(); v++ {
		if t.NumChildren(int32(v)) == 0 {
			n++
		}
	}
	return n
}

// Clone returns a deep copy.
func (t *Tree) Clone() *Tree { return MustNew(t.parent) }

// ParentVector returns a copy of the level-order parent vector.
func (t *Tree) ParentVector() []int32 { return append([]int32(nil), t.parent...) }

// String renders a compact single-line description.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{%d nodes, height %d}", t.Size(), t.Height())
}

// Pretty renders an indented multi-line view, children sorted by subtree
// canonical form so isomorphic trees print identically.
func (t *Tree) Pretty() string {
	var sb strings.Builder
	var rec func(v int32, indent int)
	rec = func(v int32, indent int) {
		sb.WriteString(strings.Repeat("  ", indent))
		fmt.Fprintf(&sb, "%d\n", v)
		kids := append([]int32(nil), t.Children(v)...)
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, c := range kids {
			rec(c, indent+1)
		}
	}
	rec(0, 0)
	return sb.String()
}
