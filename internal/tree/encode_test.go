package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Random(rng, 1+rng.Intn(50), 1+rng.Intn(5))
		back, err := Decode(Encode(tr))
		if err != nil {
			return false
		}
		a, b := tr.ParentVector(), back.ParentVector()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeSingleNode(t *testing.T) {
	if s := Encode(MustNew([]int32{-1})); s != "" {
		t.Errorf("single node encodes as %q, want empty", s)
	}
	tr, err := Decode("")
	if err != nil || tr.Size() != 1 {
		t.Errorf("decode empty: %v, %v", tr, err)
	}
	tr2, err := Decode("   ")
	if err != nil || tr2.Size() != 1 {
		t.Errorf("decode blank: %v, %v", tr2, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	for _, bad := range []string{"x", "0,x", "1", "0,5", "0,-3"} {
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode(%q) should fail", bad)
		}
	}
}

func TestDecodeKnownShape(t *testing.T) {
	tr, err := Decode("0,0,1")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 4 || tr.Height() != 2 || tr.NumChildren(0) != 2 {
		t.Errorf("decoded shape wrong: %v", tr)
	}
}

func TestComputeStats(t *testing.T) {
	s := ComputeStats(FullKAry(2, 3))
	if s.Nodes != 15 || s.Height != 3 || s.Leaves != 8 || s.MaxWidth != 8 {
		t.Errorf("full binary stats: %+v", s)
	}
	if s.AvgBranch != 2 {
		t.Errorf("avg branch = %v, want 2", s.AvgBranch)
	}
	if len(s.LevelWidths) != 4 || s.LevelWidths[2] != 4 {
		t.Errorf("level widths: %v", s.LevelWidths)
	}
	single := ComputeStats(MustNew([]int32{-1}))
	if single.AvgBranch != 0 || single.Leaves != 1 {
		t.Errorf("single node stats: %+v", single)
	}
}
