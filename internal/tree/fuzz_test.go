package tree

import "testing"

// FuzzDecode exercises the tree parser with arbitrary inputs: it must
// either return an error or a tree that re-validates and round-trips.
func FuzzDecode(f *testing.F) {
	f.Add("")
	f.Add("0")
	f.Add("0,0,1")
	f.Add("0,0,1,1,2,2,3")
	f.Add("-1")
	f.Add("0,,1")
	f.Add("0,999")
	f.Fuzz(func(t *testing.T, s string) {
		tr, err := Decode(s)
		if err != nil {
			return
		}
		if _, err := New(tr.ParentVector()); err != nil {
			t.Fatalf("Decode(%q) produced invalid tree: %v", s, err)
		}
		back, err := Decode(Encode(tr))
		if err != nil {
			t.Fatalf("re-decoding %q failed: %v", Encode(tr), err)
		}
		if back.Size() != tr.Size() {
			t.Fatalf("round trip changed size for %q", s)
		}
	})
}
