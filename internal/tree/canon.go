package tree

import (
	"sort"
	"strings"
)

// Canonical returns the AHU canonical encoding of the unordered tree: a
// parenthesization in which each node's child encodings are sorted, so
// two trees are isomorphic iff their encodings are equal. The encoding
// is derived once per tree and cached (TED*'s canonical pair
// orientation consults it on every same-size, same-height comparison),
// so repeated queries against the same signatures never re-derive it.
//
// This is the test oracle for TED* identity (δ = 0 iff isomorphic, §7.1)
// and for Lemma 1's canonization-label semantics.
func Canonical(t *Tree) string {
	t.canonOnce.Do(func() {
		t.canon = computeCanonical(t)
		t.canonSet.Store(true)
	})
	return t.canon
}

// computeCanonical derives the AHU encoding in O(n log n) amortized.
func computeCanonical(t *Tree) string {
	enc := make([]string, t.Size())
	// Level order guarantees children have larger IDs, so a reverse
	// sweep sees every child before its parent.
	for v := t.Size() - 1; v >= 0; v-- {
		kids := t.Children(int32(v))
		if len(kids) == 0 {
			enc[v] = "()"
			continue
		}
		parts := make([]string, len(kids))
		for i, c := range kids {
			parts[i] = enc[c]
		}
		sort.Strings(parts)
		var sb strings.Builder
		sb.Grow(2 + len(parts)*2)
		sb.WriteByte('(')
		for _, p := range parts {
			sb.WriteString(p)
		}
		sb.WriteByte(')')
		enc[v] = sb.String()
	}
	return enc[0]
}

// Isomorphic reports whether two unordered rooted trees are isomorphic
// with roots corresponding.
func Isomorphic(a, b *Tree) bool {
	if a.Size() != b.Size() || a.Height() != b.Height() {
		return false
	}
	return Canonical(a) == Canonical(b)
}

// CanonicalLabels assigns every node an integer such that two nodes carry
// equal labels iff their subtrees are isomorphic (Definition 5 applied to
// the whole tree at once). Labels are dense and deterministic. This is
// the whole-tree counterpart of the per-level canonization inside TED*.
func CanonicalLabels(t *Tree) []int32 {
	labels := make([]int32, t.Size())
	codes := map[string]int32{}
	enc := make([]string, t.Size())
	for v := t.Size() - 1; v >= 0; v-- {
		kids := t.Children(int32(v))
		parts := make([]string, len(kids))
		for i, c := range kids {
			parts[i] = enc[c]
		}
		sort.Strings(parts)
		key := "(" + strings.Join(parts, "") + ")"
		enc[v] = key
		id, ok := codes[key]
		if !ok {
			id = int32(len(codes))
			codes[key] = id
		}
		labels[v] = id
	}
	return labels
}
