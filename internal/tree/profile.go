package tree

import (
	"slices"
	"sync"
	"sync/atomic"
)

// This file compiles signature trees into Profiles: flat, cache-dense
// summaries precomputed once — at corpus extraction, insert, or snapshot
// load — so that candidate evaluation in similarity queries never walks
// tree structure or compares heap strings again. A Profile carries
// exactly what the filter–verify cascade in internal/ned reads per
// candidate:
//
//   - the level-size vector (the padding lower bound becomes a single
//     loop over two []int32),
//   - every node's subtree shape as a corpus-interned label ID, grouped
//     by depth and sorted within each level (the per-level label-multiset
//     lower bound becomes a linear merge of two sorted int32 runs),
//   - the AHU canonical encoding of the whole tree as an interned 64-bit
//     key (isomorphism testing becomes one integer compare). The
//     encoding STRING is not part of the profile: the rare size-and-
//     height tie in the canonical TED* pair orientation compares
//     tree.Canonical of the two trees, which each tree derives once,
//     lazily, and caches — so neither profile compilation nor segment
//     load ever materializes encoding strings up front.
//
// Labels come from an Interner — one dictionary per corpus, shared by
// every index shard and epoch clone — so two nodes anywhere in the
// corpus carry equal label IDs iff their subtrees are isomorphic.
// Profiles from different Interners are not comparable.

// Profile is the precompiled summary of one signature tree. It is
// immutable after Interner.Profile returns and safe to share across
// goroutines and epoch clones.
type Profile struct {
	// Levels[d] is the number of nodes at depth d; len(Levels) is
	// height+1. Identical to Tree.LevelSize, without the tree.
	Levels []int32

	// Labels holds one interned subtree-shape label per node, grouped by
	// depth (the tree's level order) and sorted ascending within each
	// level, so per-level multisets merge linearly. Level d occupies
	// Labels[off : off+Levels[d]] with off the prefix sum of Levels[:d].
	Labels []int32

	// Size is the node count (the sum of Levels).
	Size int32

	// MaxLevel is the widest level's size (max of Levels). The label-
	// multiset bound can reach a value v only if some level's combined
	// width across the pair exceeds 4v, so comparing the two MaxLevels
	// against the search threshold gates the O(n) label merge in O(1).
	MaxLevel int32

	// Perm maps each level-sorted position back to its node: aligned
	// with Labels, Perm[off+i] is the level-local index (node ID minus
	// the level's first node ID) of the node whose label sits at
	// Labels[off+i]. Within a level the sort is by (label, node index),
	// so equal labels keep ascending node order — the order the
	// equal-label pre-match in TED* consumes them in.
	Perm []int32

	// Kids holds every node's children's labels, sorted ascending per
	// node: node v's run is Kids[KidOff[v] : KidOff[v+1]]. This is the
	// children collection S(v) of TED* Definition 6 under corpus-interned
	// labels, precomputed so the verify stage's faithful-level fast path
	// (ted.Computer.DistanceAtMostProfiled) builds residual cost matrices
	// without re-walking or re-sorting anything.
	Kids   []int32
	KidOff []int32

	// LeafLabel is the interned label of the childless (leaf) shape —
	// the label padded nodes assume during TED*'s equal-label pre-match.
	// Two comparable profiles always agree on it: any resolved profile's
	// dictionary has interned the leaf shape (every tree bottoms out in
	// leaves), so even a read-only query profile resolves its leaves to
	// the same dictionary ID.
	LeafLabel int32

	// Canon is the interned 64-bit key of the whole tree's AHU canonical
	// encoding: two profiles from the same Interner have equal Canon iff
	// their trees are isomorphic. When the pair orientation needs the
	// encoding itself (size and height tie), callers compare
	// tree.Canonical of the profiled trees — cached on the trees, never
	// stored here.
	Canon uint64
}

// Height returns the profiled tree's height.
func (p *Profile) Height() int { return len(p.Levels) - 1 }

// Resolved reports whether every label is a dictionary ID. False only
// for query-mode profiles (ProfileQuery) of trees containing shapes
// the dictionary had not interned at compile time — any such shape
// makes every ancestor's shape unknown too, so the root's key carries
// the sentinel bit exactly when a local label exists anywhere.
func (p *Profile) Resolved() bool { return p.Canon>>32 == 0 }

// Interner is a corpus-wide dictionary of subtree shapes: it assigns
// dense int32 label IDs such that two subtrees anywhere in the corpus
// get equal IDs iff they are isomorphic. All methods are safe for
// concurrent use; profile builds from parallel extraction workers and
// from queries share one Interner.
//
// The dictionary only grows — shapes are never evicted, so label IDs
// stay stable for the life of the corpus (epoch clones and rebuilt
// indexes keep their profiles valid). Only indexed items intern
// (Profile); query signatures compile read-only (ProfileQuery), so the
// dictionary's size is bounded by the distinct shapes of the corpus's
// own signatures, never by what is queried against it.
type Interner struct {
	id    uint64 // process-unique; profile caches key on it (no pointer pinning)
	mu    sync.RWMutex
	byKey map[string]int32 // packed sorted child-label IDs -> label ID
	n     int32            // next label ID == number of interned shapes
}

// internerIDs hands every dictionary a process-unique identity.
var internerIDs atomic.Uint64

// NewInterner returns an empty shape dictionary.
func NewInterner() *Interner {
	return &Interner{id: internerIDs.Add(1), byKey: make(map[string]int32)}
}

// Len reports how many distinct subtree shapes have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return int(in.n)
}

// lookup resolves a shape key without mutating the dictionary.
func (in *Interner) lookup(key []byte) (int32, bool) {
	in.mu.RLock()
	id, ok := in.byKey[string(key)]
	in.mu.RUnlock()
	return id, ok
}

// intern resolves one shape — identified by the packed, ascending child
// label IDs in key — to its label, registering it on first sight.
func (in *Interner) intern(key []byte) int32 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.byKey[string(key)]; ok {
		return id
	}
	id := in.n
	in.n++
	in.byKey[string(key)] = id
	return id
}

// ProfileCached is Profile behind t's single-slot cache: the compiled
// profile is remembered on the tree (keyed by this Interner's identity,
// not a pointer, so a cached profile never pins a dropped dictionary),
// so repeated use of the same signature tree against the same corpus
// compiles it once. Only fully-resolved profiles ever enter the cache,
// and those are valid forever (the dictionary never evicts), so a hit
// needs no revalidation. Safe for concurrent use; a cache miss under a
// race just compiles twice and keeps either result (they are
// equivalent — interning is deterministic given the dictionary state,
// and labels only ever gain meanings).
func (in *Interner) ProfileCached(t *Tree) *Profile {
	if c := t.profCache.Load(); c != nil && c.dict == in.id && c.p.Resolved() {
		return c.p
	}
	p := in.Profile(t)
	t.profCache.Store(&cachedProfile{dict: in.id, dictLen: in.Len(), p: p})
	return p
}

// ProfileQueryCached is ProfileQuery behind the same single-slot
// cache. A fully-resolved query profile is indistinguishable from an
// interned one and stays valid forever; one carrying local labels is
// only valid while the dictionary holds exactly the shapes it held at
// compile time — interning any new shape (a subsequent Insert) could
// turn a local label into a false mismatch against the newly indexed
// shape — so a hit on an unresolved profile revalidates against the
// dictionary's current size and recompiles on growth.
func (in *Interner) ProfileQueryCached(t *Tree) *Profile {
	if c := t.profCache.Load(); c != nil && c.dict == in.id &&
		(c.p.Resolved() || in.Len() == c.dictLen) {
		return c.p
	}
	// Capture the size before compiling: growth DURING the compile then
	// invalidates the entry on its next use, conservatively.
	dictLen := in.Len()
	p := in.ProfileQuery(t)
	t.profCache.Store(&cachedProfile{dict: in.id, dictLen: dictLen, p: p})
	return p
}

// Profile compiles t against the dictionary, interning shapes it has
// never seen. The bottom-up labeling visits every child before its
// parent (level order guarantees children have larger IDs) and
// resolves each node's shape from its children's labels alone, so the
// per-tree cost is O(n) dictionary operations — the encoding strings
// are only materialized for shapes the corpus has never seen. Use for
// indexed items; queries use ProfileQuery.
func (in *Interner) Profile(t *Tree) *Profile { return in.profile(t, false) }

// ProfileQuery compiles t WITHOUT mutating the dictionary: shapes the
// corpus has never indexed get profile-local negative labels. A
// negative label can never equal an indexed (non-negative) label —
// correctly so, since a shape absent from the dictionary occurs in no
// indexed signature — so every cascade bound stays exact, while an
// arbitrary query stream can neither grow the corpus dictionary nor
// touch its write lock.
func (in *Interner) ProfileQuery(t *Tree) *Profile { return in.profile(t, true) }

func (in *Interner) profile(t *Tree, readOnly bool) *Profile {
	n := t.Size()
	labels := make([]int32, n)
	// Per-node sorted children-label runs, CSR-aligned with the tree's
	// own child storage (same counts, same offsets).
	kidOff := make([]int32, n+1)
	copy(kidOff, t.childOff)
	kidsArr := make([]int32, len(t.childIDs))
	var key []byte
	// Shapes repeat heavily within one tree (every leaf, for a start):
	// a tree-local memo keeps repeated shapes off the shared lock.
	local := make(map[string]int32, 16)
	nextLocal := int32(-1)
	for v := n - 1; v >= 0; v-- {
		kids := t.Children(int32(v))
		kidLabels := kidsArr[kidOff[v]:kidOff[v+1]]
		for i, c := range kids {
			kidLabels[i] = labels[c]
		}
		slices.Sort(kidLabels)
		key = key[:0]
		for _, id := range kidLabels {
			key = append(key, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		if id, ok := local[string(key)]; ok {
			labels[v] = id
			continue
		}
		// A key containing a local (negative) child label can never be
		// in the dictionary; the lookup just misses. Negative int32s
		// pack to byte patterns no non-negative ID produces, so local
		// keys cannot collide with dictionary keys either.
		id, ok := in.lookup(key)
		if !ok {
			if readOnly {
				id = nextLocal
				nextLocal--
			} else {
				id = in.intern(key)
			}
		}
		local[string(key)] = id
		labels[v] = id
	}

	h := t.Height()
	levels := make([]int32, h+1)
	maxLevel := int32(0)
	for d := 0; d <= h; d++ {
		levels[d] = int32(t.LevelSize(d))
		if levels[d] > maxLevel {
			maxLevel = levels[d]
		}
	}
	p := &Profile{
		Levels:    levels,
		Labels:    labels,
		Perm:      make([]int32, n),
		Kids:      kidsArr,
		KidOff:    kidOff,
		LeafLabel: labels[n-1], // last node in level order: deepest, a leaf
		Size:      int32(n),
		MaxLevel:  maxLevel,
	}
	if root := labels[0]; root >= 0 {
		p.Canon = uint64(root)
	} else {
		// Whole-tree shape unknown to the corpus: no indexed tree is
		// isomorphic, so give the key a value outside the dictionary's
		// int32 range (equality with any interned key is impossible).
		p.Canon = (1 << 32) | uint64(uint32(-root))
	}
	// The bottom-up pass is done with per-node association; the filter
	// tiers want per-level sorted multisets, so sort each level's run in
	// place — keeping the association in Perm by sorting packed
	// (label, index) keys: labels ascending (the XOR flips the sign bit
	// so negative query-local labels order before dictionary IDs), equal
	// labels by ascending node index.
	packed := make([]uint64, maxLevel)
	off := int32(0)
	for _, w := range levels {
		run := labels[off : off+w]
		perm := p.Perm[off : off+w]
		keys := packed[:w]
		for i, l := range run {
			keys[i] = uint64(uint32(l)^(1<<31))<<32 | uint64(uint32(i))
		}
		slices.Sort(keys)
		for i, k := range keys {
			run[i] = int32(uint32(k>>32) ^ (1 << 31))
			perm[i] = int32(uint32(k))
		}
		off += w
	}
	return p
}
