package tree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ned/internal/graph"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("want error for empty vector")
	}
	if _, err := New([]int32{0}); err == nil {
		t.Error("want error for root with non -1 parent")
	}
	if _, err := New([]int32{-1, 1}); err == nil {
		t.Error("want error for forward parent reference")
	}
	if _, err := New([]int32{-1, 0, 1, 0}); err == nil {
		t.Error("want error for non level order (depths 0,1,2,1)")
	}
	if _, err := New([]int32{-1, 0, 0, 1}); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
}

func TestLevelsAndChildren(t *testing.T) {
	tr := MustNew([]int32{-1, 0, 0, 1, 1, 2})
	if tr.Size() != 6 || tr.Height() != 2 {
		t.Fatalf("size/height = %d/%d, want 6/2", tr.Size(), tr.Height())
	}
	if got := tr.LevelSize(0); got != 1 {
		t.Errorf("LevelSize(0) = %d", got)
	}
	if got := tr.LevelSize(1); got != 2 {
		t.Errorf("LevelSize(1) = %d", got)
	}
	if got := tr.LevelSize(2); got != 3 {
		t.Errorf("LevelSize(2) = %d", got)
	}
	if got := tr.LevelSize(3); got != 0 {
		t.Errorf("LevelSize(3) = %d, want 0", got)
	}
	kids := tr.Children(1)
	if len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
		t.Errorf("Children(1) = %v", kids)
	}
	if tr.NumChildren(5) != 0 {
		t.Error("leaf should have no children")
	}
	if tr.Leaves() != 3 {
		t.Errorf("Leaves = %d, want 3 (nodes 3,4,5)", tr.Leaves())
	}
}

func TestTruncate(t *testing.T) {
	tr := Path(5)
	tt := tr.Truncate(2)
	if tt.Size() != 3 || tt.Height() != 2 {
		t.Errorf("Truncate(2) of Path(5): size %d height %d", tt.Size(), tt.Height())
	}
	if same := tr.Truncate(10); same.Size() != 5 {
		t.Error("Truncate beyond height should keep the whole tree")
	}
}

func TestGenerators(t *testing.T) {
	if s := Star(4); s.Size() != 5 || s.Height() != 1 {
		t.Errorf("Star(4): %v", s)
	}
	if p := Path(4); p.Size() != 4 || p.Height() != 3 {
		t.Errorf("Path(4): %v", p)
	}
	if f := FullKAry(2, 3); f.Size() != 15 {
		t.Errorf("FullKAry(2,3).Size = %d, want 15", f.Size())
	}
	if c := Caterpillar(3, 2); c.Size() != 1+3*3 {
		t.Errorf("Caterpillar(3,2).Size = %d, want 10", c.Size())
	}
	rng := rand.New(rand.NewSource(3))
	r := Random(rng, 25, 4)
	if r.Size() > 25 || r.Height() > 4 {
		t.Errorf("Random bounds violated: %v", r)
	}
	sh := RandomShape(rng, []int{1, 3, 5})
	if sh.LevelSize(1) != 3 || sh.LevelSize(2) != 5 {
		t.Errorf("RandomShape widths wrong: %d/%d", sh.LevelSize(1), sh.LevelSize(2))
	}
}

func TestRandomTreesAreValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := Random(rng, 1+rng.Intn(60), 1+rng.Intn(6))
		// Re-validate through New.
		_, err := New(tr.ParentVector())
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalIsomorphism(t *testing.T) {
	// Same shape in different child orders.
	a := MustNew([]int32{-1, 0, 0, 1, 2, 2})
	b := MustNew([]int32{-1, 0, 0, 2, 1, 1})
	if !Isomorphic(a, b) {
		t.Error("mirror-ordered trees should be isomorphic")
	}
	c := MustNew([]int32{-1, 0, 0, 1, 1, 1})
	if Isomorphic(a, c) {
		t.Error("different shapes reported isomorphic")
	}
}

func TestCanonicalDistinguishesShapes(t *testing.T) {
	if Canonical(Path(3)) == Canonical(Star(2)) {
		t.Error("Path(3) and Star(2) must differ")
	}
	if Canonical(Path(3)) != Canonical(Path(3)) {
		t.Error("equal trees must agree")
	}
}

func TestCanonicalLabelsSemantics(t *testing.T) {
	// Root with two identical subtrees and one different.
	tr := MustNew([]int32{-1, 0, 0, 0, 1, 2})
	labels := CanonicalLabels(tr)
	if labels[1] != labels[2] {
		t.Error("isomorphic subtrees must share a label")
	}
	if labels[1] == labels[3] {
		t.Error("leaf and path subtrees must differ")
	}
	if labels[4] != labels[5] {
		t.Error("two leaves must share a label")
	}
}

func TestCanonicalLabelsMatchIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		tr := Random(rng, 20, 4)
		labels := CanonicalLabels(tr)
		// Spot-check pairs within the same level.
		for d := 0; d <= tr.Height(); d++ {
			ids := tr.Level(d)
			for a := 0; a < len(ids) && a < 4; a++ {
				for b := a + 1; b < len(ids) && b < 4; b++ {
					subA := subtreeOf(tr, ids[a])
					subB := subtreeOf(tr, ids[b])
					same := Isomorphic(subA, subB)
					if same != (labels[ids[a]] == labels[ids[b]]) {
						t.Fatalf("tree %d: label equivalence mismatch at %d,%d", i, ids[a], ids[b])
					}
				}
			}
		}
	}
}

// subtreeOf extracts the subtree rooted at v as a standalone Tree.
func subtreeOf(t *Tree, v int32) *Tree {
	var nodes []int32
	queue := []int32{v}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nodes = append(nodes, u)
		queue = append(queue, t.Children(u)...)
	}
	newID := make(map[int32]int32, len(nodes))
	for i, u := range nodes {
		newID[u] = int32(i)
	}
	parent := make([]int32, len(nodes))
	parent[0] = -1
	for i := 1; i < len(nodes); i++ {
		parent[i] = newID[t.Parent(nodes[i])]
	}
	return MustNew(parent)
}

func TestKAdjacentOnPathGraph(t *testing.T) {
	b := graph.NewBuilder(6, false)
	for i := 0; i < 5; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	tr, back := KAdjacent(g, 2, 2)
	// Node 2 sees {1,3} at depth 1 and {0,4} at depth 2.
	if tr.Size() != 5 {
		t.Fatalf("size = %d, want 5", tr.Size())
	}
	if tr.LevelSize(1) != 2 || tr.LevelSize(2) != 2 {
		t.Errorf("level sizes %d/%d, want 2/2", tr.LevelSize(1), tr.LevelSize(2))
	}
	if back[0] != 2 {
		t.Errorf("root maps to %d, want 2", back[0])
	}
}

func TestKAdjacentDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(50, false)
	for i := 0; i < 150; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50)))
	}
	g := b.Build()
	t1, _ := KAdjacent(g, 7, 3)
	t2, _ := KAdjacent(g, 7, 3)
	v1, v2 := t1.ParentVector(), t2.ParentVector()
	if len(v1) != len(v2) {
		t.Fatal("non-deterministic extraction")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("non-deterministic extraction")
		}
	}
}

func TestKAdjacentDirected(t *testing.T) {
	// 0 -> 1 -> 2, 3 -> 1
	b := graph.NewBuilder(4, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 1)
	g := b.Build()
	out, _ := KAdjacentOutgoing(g, 1, 2)
	if out.Size() != 2 { // 1 -> 2 only
		t.Errorf("outgoing tree size = %d, want 2", out.Size())
	}
	in, _ := KAdjacentIncoming(g, 1, 2)
	if in.Size() != 3 { // 1 <- 0 and 1 <- 3
		t.Errorf("incoming tree size = %d, want 3", in.Size())
	}
}

func TestKAdjacentTruncation(t *testing.T) {
	// k-adjacent at larger k contains the smaller-k tree as its top part.
	rng := rand.New(rand.NewSource(6))
	b := graph.NewBuilder(80, false)
	for i := 0; i < 200; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(80)), graph.NodeID(rng.Intn(80)))
	}
	g := b.Build()
	big, _ := KAdjacent(g, 0, 4)
	small, _ := KAdjacent(g, 0, 2)
	if !Isomorphic(big.Truncate(2), small) {
		t.Error("T(v,4) truncated to depth 2 must equal T(v,2)")
	}
}

func TestPrettyAndString(t *testing.T) {
	tr := Star(2)
	if tr.String() == "" || tr.Pretty() == "" {
		t.Error("render methods must not be empty")
	}
}
