package tree

import (
	"math/rand"
	"sync"
	"testing"
)

// profileTestTrees is a deterministic shape mix: random trees plus the
// adversarial generators.
func profileTestTrees(n int) []*Tree {
	rng := rand.New(rand.NewSource(7))
	out := make([]*Tree, 0, n+5)
	for i := 0; i < n; i++ {
		out = append(out, Random(rng, 1+rng.Intn(50), 1+rng.Intn(5)))
	}
	return append(out, Star(10), Path(8), Caterpillar(3, 4), FullKAry(3, 3), MustNew([]int32{-1}))
}

// TestProfileShape pins the Profile invariants everything downstream
// reads blind: Levels mirrors LevelSize, Labels is level-grouped and
// sorted within each level, and Size is the node count.
func TestProfileShape(t *testing.T) {
	in := NewInterner()
	for _, tr := range profileTestTrees(60) {
		p := in.Profile(tr)
		if int(p.Size) != tr.Size() {
			t.Fatalf("Size=%d, tree has %d nodes", p.Size, tr.Size())
		}
		if p.Height() != tr.Height() {
			t.Fatalf("Height=%d, tree height %d", p.Height(), tr.Height())
		}
		if len(p.Labels) != tr.Size() {
			t.Fatalf("len(Labels)=%d, want %d", len(p.Labels), tr.Size())
		}
		off := int32(0)
		for d, w := range p.Levels {
			if int(w) != tr.LevelSize(d) {
				t.Fatalf("Levels[%d]=%d, LevelSize=%d", d, w, tr.LevelSize(d))
			}
			run := p.Labels[off : off+w]
			for i := 1; i < len(run); i++ {
				if run[i-1] > run[i] {
					t.Fatalf("level %d labels not sorted: %v", d, run)
				}
			}
			off += w
		}
	}
}

// TestInternerKeyIsIsomorphism pins the dictionary semantics: two
// profiles from one Interner share a Canon key iff their trees are
// isomorphic, and interning is stable — re-profiling a tree yields the
// identical profile.
func TestInternerKeyIsIsomorphism(t *testing.T) {
	in := NewInterner()
	trees := profileTestTrees(50)
	ps := make([]*Profile, len(trees))
	for i, tr := range trees {
		ps[i] = in.Profile(tr)
	}
	for i, t1 := range trees {
		for j, t2 := range trees {
			if (ps[i].Canon == ps[j].Canon) != Isomorphic(t1, t2) {
				t.Fatalf("canon keys %d/%d disagree with isomorphism for %q vs %q",
					ps[i].Canon, ps[j].Canon, Encode(t1), Encode(t2))
			}
		}
	}
	for i, tr := range trees {
		q := in.Profile(tr)
		if q.Canon != ps[i].Canon {
			t.Fatalf("re-profiling drifted: %d -> %d", ps[i].Canon, q.Canon)
		}
		for k := range q.Labels {
			if q.Labels[k] != ps[i].Labels[k] {
				t.Fatalf("label %d drifted on re-profiling", k)
			}
		}
	}
}

// TestProfileQueryReadOnly pins the query-mode contract: compiling a
// tree the corpus has never seen grows nothing, known shapes keep
// their dictionary labels, unknown shapes get negative profile-local
// labels that can never equal an indexed one, and the whole-tree key
// never collides with an interned key. The single-slot cache must also
// never hand a read-only profile to the interning path.
func TestProfileQueryReadOnly(t *testing.T) {
	in := NewInterner()
	indexed := in.Profile(Star(4))
	before := in.Len()

	novel := Caterpillar(3, 2)
	q := in.ProfileQuery(novel)
	if in.Len() != before {
		t.Fatalf("ProfileQuery grew the dictionary: %d -> %d", before, in.Len())
	}
	if q.Canon <= uint64(^uint32(0)>>1) {
		t.Fatalf("unknown-shape query key %d is inside the dictionary's int32 range", q.Canon)
	}
	if q.Canon == indexed.Canon {
		t.Fatal("query key collides with an indexed key")
	}
	hasNeg := false
	for _, l := range q.Labels {
		hasNeg = hasNeg || l < 0
	}
	if !hasNeg {
		t.Fatal("novel query tree produced no local labels")
	}

	// Known shape: query mode must resolve to the exact interned profile.
	q2 := in.ProfileQuery(Star(4))
	if q2.Canon != indexed.Canon {
		t.Fatalf("query profile of an indexed shape diverged: %d vs %d", q2.Canon, indexed.Canon)
	}

	// Cache isolation: a read-only cached profile must not satisfy the
	// interning path, and interning afterwards must assign real labels.
	cachedQ := in.ProfileQueryCached(novel)
	full := in.ProfileCached(novel)
	if full == cachedQ {
		t.Fatal("ProfileCached reused a read-only query profile")
	}
	for _, l := range full.Labels {
		if l < 0 {
			t.Fatal("interned profile carries local labels")
		}
	}
	if got := in.ProfileQueryCached(novel); got != full {
		t.Fatal("query cache did not reuse the now-interned profile")
	}
}

// TestProfileQueryStaleness is the regression test for the stale
// local-label hazard: a query profile compiled while some of its
// shapes were unknown must not be reused after the dictionary interns
// them — the local labels would then falsely mismatch the newly
// indexed shapes. Unresolved profiles must bypass the cache and
// recompile to dictionary labels once the shapes exist.
func TestProfileQueryStaleness(t *testing.T) {
	in := NewInterner()
	in.Profile(Star(3)) // some unrelated indexed shape
	novel := Caterpillar(2, 2)

	q1 := in.ProfileQueryCached(novel)
	if q1.Resolved() {
		t.Fatal("novel query tree unexpectedly resolved")
	}
	// The corpus later indexes an isomorphic signature.
	item := in.Profile(Caterpillar(2, 2))
	q2 := in.ProfileQueryCached(novel)
	if !q2.Resolved() {
		t.Fatal("query profile still unresolved after its shapes were interned (stale cache)")
	}
	if q2.Canon != item.Canon {
		t.Fatalf("re-profiled query key %d != interned key %d", q2.Canon, item.Canon)
	}
	if q1.Canon == item.Canon {
		t.Fatal("unresolved profile's sentinel key collides with the interned key")
	}
}

// TestInternerConcurrent profiles the same shape mix from many
// goroutines against one dictionary — the corpus build and query paths
// do exactly this — and checks every worker resolved identical labels.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	trees := profileTestTrees(40)
	const workers = 8
	results := make([][]*Profile, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ps := make([]*Profile, len(trees))
			for i, tr := range trees {
				ps[i] = in.Profile(tr)
			}
			results[w] = ps
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range trees {
			if results[w][i].Canon != results[0][i].Canon {
				t.Fatalf("worker %d interned tree %d as %d, worker 0 as %d",
					w, i, results[w][i].Canon, results[0][i].Canon)
			}
		}
	}
}
