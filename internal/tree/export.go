package tree

import (
	"fmt"
	"slices"
)

// This file is the persistence boundary of the shape dictionary and
// the compiled profiles: binary corpus segments (internal/segment)
// store the Interner as a CSR table of child-label runs and each
// Profile as its flat int32 columns, so a snapshot load reconstructs
// both WITHOUT re-walking trees, re-hashing shapes, or re-deriving a
// single AHU string per node — the restart cost the binary format
// exists to eliminate. Everything here validates its input: segment
// bytes pass a checksum before they reach these constructors, but a
// checksum only proves the file is what was written, not that what was
// written is consistent.

// ExportShapes returns the dictionary as a CSR table over label IDs:
// shape id's sorted child labels occupy kids[kidOff[id]:kidOff[id+1]].
// Labels are assigned bottom-up at intern time, so every child label
// is strictly smaller than its shape's own id — the invariant that
// lets NewInternerFromShapes rebuild the encodings in one forward
// pass. The result is deterministic for a given dictionary state.
func (in *Interner) ExportShapes() (kidOff, kids []int32) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	n := int(in.n)
	kidOff = make([]int32, n+1)
	for key, id := range in.byKey {
		kidOff[id+1] = int32(len(key) / 4)
	}
	for i := 1; i <= n; i++ {
		kidOff[i] += kidOff[i-1]
	}
	kids = make([]int32, kidOff[n])
	for key, id := range in.byKey {
		run := kids[kidOff[id]:kidOff[id+1]]
		for i := range run {
			k := key[4*i:]
			run[i] = int32(uint32(k[0]) | uint32(k[1])<<8 | uint32(k[2])<<16 | uint32(k[3])<<24)
		}
	}
	return kidOff, kids
}

// NewInternerFromShapes rebuilds a dictionary from an ExportShapes
// table, reassigning the same label IDs: shape id gets the sorted
// child labels kids[kidOff[id]:kidOff[id+1]], each of which must be a
// smaller id (children intern before parents). No AHU encoding strings
// are materialized — the dictionary never stores them — so rebuilding
// costs one map insert per distinct shape and profiles reconstructed
// against the result are indistinguishable from freshly compiled ones.
func NewInternerFromShapes(kidOff, kids []int32) (*Interner, error) {
	if len(kidOff) == 0 || kidOff[0] != 0 {
		return nil, fmt.Errorf("tree: shape table offsets must start at 0")
	}
	n := len(kidOff) - 1
	if int(kidOff[n]) != len(kids) {
		return nil, fmt.Errorf("tree: shape table declares %d child labels, has %d", kidOff[n], len(kids))
	}
	in := NewInterner()
	var key []byte
	for id := 0; id < n; id++ {
		if kidOff[id] > kidOff[id+1] {
			return nil, fmt.Errorf("tree: shape %d has negative child count", id)
		}
		run := kids[kidOff[id]:kidOff[id+1]]
		key = key[:0]
		prev := int32(-1)
		for _, kid := range run {
			if kid < 0 || kid >= int32(id) {
				return nil, fmt.Errorf("tree: shape %d has child label %d (want [0, %d))", id, kid, id)
			}
			if kid < prev {
				return nil, fmt.Errorf("tree: shape %d child labels not sorted", id)
			}
			prev = kid
			key = append(key, byte(kid), byte(kid>>8), byte(kid>>16), byte(kid>>24))
		}
		if _, dup := in.byKey[string(key)]; dup {
			return nil, fmt.Errorf("tree: shape %d duplicates an earlier shape", id)
		}
		in.byKey[string(key)] = int32(id)
	}
	in.n = int32(n)
	return in, nil
}

// ProfileFromParts reconstructs a compiled Profile from its persisted
// columns — the level-sorted labels, the level-local permutation, and
// the CSR child-label runs aligned with t's own child storage — all
// expressed against this dictionary. The derived fields (level sizes,
// size, max level, leaf and root labels, the interned encoding) are
// recomputed from the tree and dictionary rather than trusted, and the
// stored columns are validated structurally: every label a dictionary
// ID, labels sorted within each level, Perm a plausible level-local
// index. The reconstructed profile enters t's profile cache, exactly
// as a fresh compile would.
func (in *Interner) ProfileFromParts(t *Tree, labels, perm, kids []int32) (*Profile, error) {
	n := t.Size()
	if len(labels) != n || len(perm) != n {
		return nil, fmt.Errorf("tree: profile has %d labels and %d perm entries for a %d-node tree", len(labels), len(perm), n)
	}
	if len(kids) != len(t.childIDs) {
		return nil, fmt.Errorf("tree: profile has %d child labels, tree has %d edges", len(kids), len(t.childIDs))
	}
	dictLen := int32(in.Len())
	// One pass over kids checks range and per-node sortedness together:
	// within node v's run each label must be in [prev, dictLen), with
	// prev resetting to 0 at every node boundary.
	for v, i := 0, 0; v < n; v++ {
		prev := int32(0)
		for end := int(t.childOff[v+1]); i < end; i++ {
			l := kids[i]
			if l < prev || l >= dictLen {
				return nil, fmt.Errorf("tree: profile child labels of node %d not sorted within dictionary [0, %d)", v, dictLen)
			}
			prev = l
		}
	}
	h := t.Height()
	levels := make([]int32, h+1)
	maxLevel := int32(0)
	for d := 0; d <= h; d++ {
		levels[d] = int32(t.LevelSize(d))
		if levels[d] > maxLevel {
			maxLevel = levels[d]
		}
	}
	// Labels must be sorted within each level AND every one a dictionary
	// ID; sortedness makes the range check per level O(1) (first and
	// last element), leaving one comparison per label.
	off := int32(0)
	for d, w := range levels {
		run := labels[off : off+w]
		if !slices.IsSorted(run) {
			return nil, fmt.Errorf("tree: profile labels not sorted within level %d", d)
		}
		if run[0] < 0 || run[w-1] >= dictLen {
			return nil, fmt.Errorf("tree: profile labels of level %d outside dictionary [0, %d)", d, dictLen)
		}
		for _, p := range perm[off : off+w] {
			if p < 0 || p >= w {
				return nil, fmt.Errorf("tree: profile perm entry %d outside level %d width %d", p, d, w)
			}
		}
		off += w
	}
	p := &Profile{
		Levels:    levels,
		Labels:    labels,
		Perm:      perm,
		Kids:      kids,
		KidOff:    t.childOff, // aligned by construction; both sides immutable
		LeafLabel: labels[n-1],
		Size:      int32(n),
		MaxLevel:  maxLevel,
		Canon:     uint64(labels[0]), // level 0 is the root alone
	}
	t.profCache.Store(&cachedProfile{dict: in.id, dictLen: in.Len(), p: p})
	return p, nil
}
