package tree

// This file compiles a batch of Profiles into a ProfileArena: one
// struct-of-arrays block holding every profile's cascade-relevant data
// in contiguous int32 (and uint64) arrays, indexed by slot. The filter
// tiers of the internal/ned cascade sweep these arrays in tight
// bounds-check-hoisted loops over whole candidate blocks — no *Item or
// *Profile is dereferenced until a candidate survives every tier and
// reaches the verify stage. The arena is immutable after compilation
// and safe to share across epoch clones (the owner recompiles it when
// the underlying item set changes).

// ProfileArena is the columnar layout of a slice of Profiles. All
// per-slot arrays are indexed by the position the profile held in the
// compiling slice; the variable-length level and label data are
// concatenated with per-slot offset arrays (CSR layout).
type ProfileArena struct {
	// N is the slot count.
	N int

	// Sizes[i] is profile i's node count (Profile.Size).
	Sizes []int32

	// MaxW[i] is profile i's widest level (Profile.MaxLevel), the O(1)
	// gate of the label tier.
	MaxW []int32

	// Canon[i] is profile i's interned 64-bit AHU key: equal keys (from
	// one Interner) mean isomorphic trees, distance 0.
	Canon []uint64

	// Levels holds every profile's level-size vector, concatenated;
	// slot i owns Levels[LevOff[i]:LevOff[i+1]]. len(LevOff) == N+1.
	LevOff []int32
	Levels []int32

	// Labels holds every profile's per-level sorted label runs,
	// concatenated in slot order; slot i owns
	// Labels[LabOff[i]:LabOff[i+1]], with level d's run located by the
	// prefix sums of the slot's level sizes. len(LabOff) == N+1.
	LabOff []int32
	Labels []int32
}

// CompileArena builds the columnar arena over ps. Every profile must be
// non-nil and compiled against one shared Interner; a nil profile makes
// the batch uncompilable and returns nil (callers fall back to the
// scalar per-candidate path).
func CompileArena(ps []*Profile) *ProfileArena {
	n := len(ps)
	levTotal, labTotal := 0, 0
	for _, p := range ps {
		if p == nil {
			return nil
		}
		levTotal += len(p.Levels)
		labTotal += len(p.Labels)
	}
	a := &ProfileArena{
		N:      n,
		Sizes:  make([]int32, n),
		MaxW:   make([]int32, n),
		Canon:  make([]uint64, n),
		LevOff: make([]int32, n+1),
		Levels: make([]int32, 0, levTotal),
		LabOff: make([]int32, n+1),
		Labels: make([]int32, 0, labTotal),
	}
	for i, p := range ps {
		a.Sizes[i] = p.Size
		a.MaxW[i] = p.MaxLevel
		a.Canon[i] = p.Canon
		a.Levels = append(a.Levels, p.Levels...)
		a.LevOff[i+1] = int32(len(a.Levels))
		a.Labels = append(a.Labels, p.Labels...)
		a.LabOff[i+1] = int32(len(a.Labels))
	}
	return a
}

// SlotLevels returns slot i's level-size vector.
func (a *ProfileArena) SlotLevels(i int) []int32 {
	return a.Levels[a.LevOff[i]:a.LevOff[i+1]]
}

// SlotLabels returns slot i's concatenated per-level sorted label runs.
func (a *ProfileArena) SlotLabels(i int) []int32 {
	return a.Labels[a.LabOff[i]:a.LabOff[i+1]]
}
