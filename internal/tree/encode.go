package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// Encode serializes a tree as a compact single-line string: the
// level-order parent vector, comma-separated, with the root's -1
// omitted (e.g. "0,0,1" is a root, two children, one grandchild).
// A single-node tree encodes as "".
func Encode(t *Tree) string {
	pv := t.ParentVector()
	if len(pv) == 1 {
		return ""
	}
	parts := make([]string, len(pv)-1)
	for i, p := range pv[1:] {
		parts[i] = strconv.Itoa(int(p))
	}
	return strings.Join(parts, ",")
}

// Decode parses the Encode format back into a tree.
func Decode(s string) (*Tree, error) {
	if strings.TrimSpace(s) == "" {
		return MustNew([]int32{-1}), nil
	}
	parts := strings.Split(s, ",")
	parent := make([]int32, len(parts)+1)
	parent[0] = -1
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("tree: decoding element %d %q: %w", i, p, err)
		}
		parent[i+1] = int32(v)
	}
	t, err := New(parent)
	if err != nil {
		return nil, fmt.Errorf("tree: decoding %q: %w", s, err)
	}
	return t, nil
}

// Stats summarizes a tree's shape: the level-width profile that governs
// TED* cost, plus aggregate counts.
type Stats struct {
	Nodes       int
	Height      int
	Leaves      int
	MaxWidth    int
	LevelWidths []int
	AvgBranch   float64 // mean children per internal node
}

// ComputeStats measures a tree.
func ComputeStats(t *Tree) Stats {
	s := Stats{Nodes: t.Size(), Height: t.Height(), Leaves: t.Leaves()}
	internal := 0
	for v := 0; v < t.Size(); v++ {
		if t.NumChildren(int32(v)) > 0 {
			internal++
		}
	}
	if internal > 0 {
		s.AvgBranch = float64(t.Size()-1) / float64(internal)
	}
	for d := 0; d <= t.Height(); d++ {
		w := t.LevelSize(d)
		s.LevelWidths = append(s.LevelWidths, w)
		if w > s.MaxWidth {
			s.MaxWidth = w
		}
	}
	return s
}
