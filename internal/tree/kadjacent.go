package tree

import "ned/internal/graph"

// KAdjacent extracts the unordered k-adjacent tree T(v, k) of Definition 1:
// the breadth-first search tree rooted at v, truncated to the root plus k
// levels of neighbors (depths 0..k). The extraction is deterministic
// because graph adjacency lists are sorted.
//
// The returned tree's node 0 corresponds to v; the mapping from tree node
// IDs back to graph node IDs is also returned.
func KAdjacent(g *graph.Graph, v graph.NodeID, k int) (*Tree, []graph.NodeID) {
	return kAdjacent(g, v, k, graph.Outgoing)
}

// KAdjacentIncoming extracts the incoming k-adjacent tree TI(v, k) of
// Definition 2: the BFS tree of v following incoming edges only.
// For undirected graphs it equals KAdjacent.
func KAdjacentIncoming(g *graph.Graph, v graph.NodeID, k int) (*Tree, []graph.NodeID) {
	return kAdjacent(g, v, k, graph.Incoming)
}

// KAdjacentOutgoing extracts the outgoing k-adjacent tree TO(v, k):
// the BFS tree of v following outgoing edges only.
func KAdjacentOutgoing(g *graph.Graph, v graph.NodeID, k int) (*Tree, []graph.NodeID) {
	return kAdjacent(g, v, k, graph.Outgoing)
}

func kAdjacent(g *graph.Graph, v graph.NodeID, k int, dir graph.EdgeDirection) (*Tree, []graph.NodeID) {
	res := graph.BFS(g, v, k, dir)
	// BFS order is level order, so tree node i = res.Order[i].
	newID := make(map[graph.NodeID]int32, len(res.Order))
	for i, u := range res.Order {
		newID[u] = int32(i)
	}
	parent := make([]int32, len(res.Order))
	parent[0] = -1
	for i := 1; i < len(res.Order); i++ {
		parent[i] = newID[res.Parent[res.Order[i]]]
	}
	return MustNew(parent), res.Order
}
