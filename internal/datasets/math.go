package datasets

import "math"

func mathLog(x float64) float64 { return math.Log(x) }

// hashName derives a stable per-dataset seed offset (FNV-1a).
func hashName(n Name) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(n); i++ {
		h ^= uint32(n[i])
		h *= 16777619
	}
	return h
}
