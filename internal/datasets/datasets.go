// Package datasets provides deterministic synthetic stand-ins for the six
// real-world graphs of Table 2 (CA/PA road networks, Amazon, DBLP,
// Gnutella, PGP). The real SNAP/KONECT files cannot ship inside an
// offline build, so each generator reproduces the topological regime the
// corresponding experiment depends on — degree distribution shape,
// clustering, and BFS-tree level-width profile — at a laptop-friendly
// scale (see DESIGN.md §2 for the substitution rationale). The package
// also re-exports the SNAP edge-list loader so the genuine files can be
// dropped in.
package datasets

import (
	"fmt"
	"math/rand"

	"ned/internal/graph"
)

// Name identifies one of the six paper datasets.
type Name string

// The six datasets of Table 2.
const (
	CAR  Name = "CAR"  // California road network analog
	PAR  Name = "PAR"  // Pennsylvania road network analog
	AMZN Name = "AMZN" // Amazon co-purchase analog
	DBLP Name = "DBLP" // DBLP co-authorship analog
	GNU  Name = "GNU"  // Gnutella peer-to-peer analog
	PGP  Name = "PGP"  // PGP web-of-trust analog
)

// All lists the datasets in the paper's Table 2 order.
var All = []Name{CAR, PAR, AMZN, DBLP, GNU, PGP}

// Stats summarizes a generated graph for the Table 2 reproduction.
type Stats struct {
	Name      Name
	Nodes     int
	Edges     int
	AvgDegree float64
	MaxDegree int
}

// Options scales generation. Scale 1.0 produces the default laptop-sized
// graphs; the paper's full sizes would use Scale ≈ 50 for the road
// networks. Seed fixes the generator stream.
type Options struct {
	Scale float64
	Seed  int64
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// Generate builds the named dataset analog.
func Generate(name Name, opts Options) (*graph.Graph, error) {
	opts.defaults()
	rng := rand.New(rand.NewSource(opts.Seed ^ int64(hashName(name))))
	s := opts.Scale
	switch name {
	case CAR:
		// CA road network: 1.97M nodes, avg degree 2.8. Analog: 200×100
		// grid with 3% edge deletions and 1% shortcut edges.
		return RoadNetwork(int(200*sqrtScale(s)), int(100*sqrtScale(s)), 0.03, 0.01, rng), nil
	case PAR:
		// PA road network: 1.09M nodes. Analog: smaller grid, same regime.
		return RoadNetwork(int(150*sqrtScale(s)), int(100*sqrtScale(s)), 0.03, 0.01, rng), nil
	case AMZN:
		// Amazon co-purchase: 335K nodes, avg degree 5.5, clustered.
		return PreferentialAttachment(int(8000*s), 3, 0.3, rng), nil
	case DBLP:
		// DBLP co-authorship: 317K nodes, avg degree 6.6, very clustered.
		return PreferentialAttachment(int(8000*s), 3, 0.6, rng), nil
	case GNU:
		// Gnutella: 63K nodes, avg degree 4.7, low clustering.
		return ErdosRenyi(int(4000*s), 2.4, rng), nil
	case PGP:
		// PGP web of trust: 10.7K nodes, avg degree 4.6, heavy-tailed
		// with strong clustering (signatures concentrate on hubs).
		return PreferentialAttachment(int(2670*s), 2, 0.5, rng), nil
	default:
		return nil, fmt.Errorf("datasets: unknown dataset %q", name)
	}
}

// MustGenerate is Generate but panics on unknown names; for benchmarks.
func MustGenerate(name Name, opts Options) *graph.Graph {
	g, err := Generate(name, opts)
	if err != nil {
		panic(err)
	}
	return g
}

// Summarize produces the Table 2 row for a generated graph.
func Summarize(name Name, g *graph.Graph) Stats {
	return Stats{
		Name:      name,
		Nodes:     g.NumNodes(),
		Edges:     g.NumEdges(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
}

// RoadNetwork generates a w×h grid graph with a dropRatio fraction of
// edges removed and a shortcutRatio fraction of extra local diagonal
// edges — planar-ish, degree ≤ 5, huge diameter, thin BFS trees: the
// regime of the CAR/PAR road networks.
func RoadNetwork(w, h int, dropRatio, shortcutRatio float64, rng *rand.Rand) *graph.Graph {
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	id := func(x, y int) graph.NodeID { return graph.NodeID(y*w + x) }
	b := graph.NewBuilder(w*h, false)
	var edges []graph.Edge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y)})
			}
			if y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1)})
			}
		}
	}
	for _, e := range edges {
		if rng.Float64() < dropRatio {
			continue
		}
		b.AddEdge(e.U, e.V)
	}
	shortcuts := int(float64(len(edges)) * shortcutRatio)
	for i := 0; i < shortcuts; i++ {
		x := rng.Intn(w - 1)
		y := rng.Intn(h - 1)
		b.AddEdge(id(x, y), id(x+1, y+1))
	}
	return b.Build()
}

// PreferentialAttachment generates a Barabási–Albert-style graph with m
// edges per arriving node plus triad closure: with probability closure
// each new edge attaches to a neighbor of the previous target instead of
// a degree-proportional target, producing the high clustering of
// co-purchase and co-authorship networks (AMZN/DBLP).
func PreferentialAttachment(n, m int, closure float64, rng *rand.Rand) *graph.Graph {
	if n < m+1 {
		n = m + 1
	}
	b := graph.NewBuilder(n, false)
	// Repeated-nodes list for degree-proportional sampling.
	targets := make([]graph.NodeID, 0, 2*n*m)
	// Seed clique over the first m+1 nodes.
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			targets = append(targets, graph.NodeID(i), graph.NodeID(j))
		}
	}
	adj := make([][]graph.NodeID, n)
	for i := 0; i <= m; i++ {
		for j := 0; j <= m; j++ {
			if i != j {
				adj[i] = append(adj[i], graph.NodeID(j))
			}
		}
	}
	for v := m + 1; v < n; v++ {
		var prev graph.NodeID = -1
		chosen := map[graph.NodeID]bool{}
		for e := 0; e < m; e++ {
			var t graph.NodeID
			if prev >= 0 && rng.Float64() < closure && len(adj[prev]) > 0 {
				t = adj[prev][rng.Intn(len(adj[prev]))]
			} else {
				t = targets[rng.Intn(len(targets))]
			}
			if int(t) == v || chosen[t] {
				// Fall back to uniform to keep the loop finite.
				t = graph.NodeID(rng.Intn(v))
				if int(t) == v || chosen[t] {
					continue
				}
			}
			chosen[t] = true
			b.AddEdge(graph.NodeID(v), t)
			adj[v] = append(adj[v], t)
			adj[t] = append(adj[t], graph.NodeID(v))
			targets = append(targets, graph.NodeID(v), t)
			prev = t
		}
	}
	return b.Build()
}

// ErdosRenyi generates a G(n, p) random graph with expected average
// degree avgDeg (p = avgDeg/(n-1)), the low-clustering regime of
// Gnutella. Edge sampling uses the geometric skipping trick, O(n·avgDeg).
func ErdosRenyi(n int, avgDeg float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, false)
	if n < 2 {
		return b.Build()
	}
	p := avgDeg / float64(n-1)
	if p >= 1 {
		p = 0.999
	}
	// Iterate over the implicit upper-triangle index with geometric skips.
	total := int64(n) * int64(n-1) / 2
	idx := int64(-1)
	for {
		// Skip ~Geom(p).
		u := rng.Float64()
		skip := int64(1)
		if p < 1 {
			skip = 1 + int64(logf(1-u)/logf(1-p))
		}
		idx += skip
		if idx >= total {
			break
		}
		i, j := triangleIndex(idx, n)
		b.AddEdge(graph.NodeID(i), graph.NodeID(j))
	}
	return b.Build()
}

// SmallWorld generates a Watts–Strogatz graph: a ring lattice with k
// neighbors per side rewired with probability beta — the PGP regime
// (high clustering, short paths).
func SmallWorld(n, k int, beta float64, rng *rand.Rand) *graph.Graph {
	b := graph.NewBuilder(n, false)
	if n < 2 {
		return b.Build()
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	for v := 0; v < n; v++ {
		for d := 1; d <= half; d++ {
			u := (v + d) % n
			if rng.Float64() < beta {
				w := rng.Intn(n)
				if w != v {
					u = w
				}
			}
			b.AddEdge(graph.NodeID(v), graph.NodeID(u))
		}
	}
	return b.Build()
}

// LoadSNAP loads a real SNAP/KONECT edge-list file in place of a
// generator, enabling the paper's exact datasets when available.
func LoadSNAP(path string) (*graph.Graph, error) {
	g, _, err := graph.LoadEdgeListFile(path, false)
	return g, err
}

func sqrtScale(s float64) float64 {
	// Road grids scale by area; take sqrt so Scale multiplies node count.
	r := 1.0
	for i := 0; i < 40; i++ { // Newton iterations, no math import needed
		r = 0.5 * (r + s/r)
	}
	return r
}

func logf(x float64) float64 {
	// Thin wrapper to keep a single math dependency point.
	return mathLog(x)
}

// triangleIndex maps a linear index over the strict upper triangle of an
// n×n matrix to its (row, col) pair.
func triangleIndex(idx int64, n int) (int, int) {
	// Row r owns (n-1-r) cells starting at offset r*n - r*(r+1)/2... find
	// r by linear scan from a good initial guess (rows shrink, so the
	// scan is short in expectation).
	r := 0
	rowStart := int64(0)
	for {
		rowLen := int64(n - 1 - r)
		if idx < rowStart+rowLen {
			c := r + 1 + int(idx-rowStart)
			return r, c
		}
		rowStart += rowLen
		r++
	}
}
