package datasets

import (
	"math/rand"
	"testing"

	"ned/internal/graph"
)

func TestGenerateAllDatasets(t *testing.T) {
	for _, name := range All {
		g, err := Generate(name, Options{Scale: 0.1, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumNodes() == 0 || g.NumEdges() == 0 {
			t.Errorf("%s: degenerate graph %v", name, g)
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("NOPE", Options{}); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, name := range All {
		a := MustGenerate(name, Options{Scale: 0.1, Seed: 5})
		b := MustGenerate(name, Options{Scale: 0.1, Seed: 5})
		if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
			t.Fatalf("%s: same seed, different graphs", name)
		}
		ea, eb := a.Edges(), b.Edges()
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: same seed, different edges", name)
			}
		}
		c := MustGenerate(name, Options{Scale: 0.1, Seed: 6})
		if c.NumEdges() == a.NumEdges() && sameEdges(a, c) {
			t.Errorf("%s: different seeds produced identical graphs", name)
		}
	}
}

func sameEdges(a, b *graph.Graph) bool {
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestScaleGrowsGraphs(t *testing.T) {
	small := MustGenerate(PGP, Options{Scale: 0.2, Seed: 1})
	big := MustGenerate(PGP, Options{Scale: 0.8, Seed: 1})
	if big.NumNodes() <= small.NumNodes() {
		t.Errorf("scale 0.8 (%d nodes) should exceed scale 0.2 (%d nodes)",
			big.NumNodes(), small.NumNodes())
	}
}

func TestTopologicalRegimes(t *testing.T) {
	// Road analogs: low max degree, avg degree < 4.
	car := MustGenerate(CAR, Options{Scale: 0.5, Seed: 1})
	if car.MaxDegree() > 8 {
		t.Errorf("CAR max degree = %d, want road-like (<= 8)", car.MaxDegree())
	}
	if ad := car.AvgDegree(); ad < 1.5 || ad > 4 {
		t.Errorf("CAR avg degree = %.2f, want road-like (1.5-4)", ad)
	}
	// Social analogs: heavy tail — max degree far above average.
	dblp := MustGenerate(DBLP, Options{Scale: 0.5, Seed: 1})
	if float64(dblp.MaxDegree()) < 5*dblp.AvgDegree() {
		t.Errorf("DBLP max degree %d not heavy-tailed vs avg %.2f",
			dblp.MaxDegree(), dblp.AvgDegree())
	}
}

func TestRoadNetworkGenerator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := RoadNetwork(10, 8, 0, 0, rng)
	if g.NumNodes() != 80 {
		t.Errorf("grid nodes = %d, want 80", g.NumNodes())
	}
	// Full grid: 10*7 + 9*8 = 142 edges.
	if g.NumEdges() != 142 {
		t.Errorf("grid edges = %d, want 142", g.NumEdges())
	}
	dropped := RoadNetwork(10, 8, 0.5, 0, rand.New(rand.NewSource(2)))
	if dropped.NumEdges() >= g.NumEdges() {
		t.Error("dropRatio should remove edges")
	}
}

func TestPreferentialAttachmentDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PreferentialAttachment(500, 3, 0.3, rng)
	if g.NumNodes() != 500 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Average degree close to 2m.
	if ad := g.AvgDegree(); ad < 3 || ad > 8 {
		t.Errorf("avg degree = %.2f, want around 6", ad)
	}
	// Early nodes should be hubs.
	if g.MaxDegree() < 15 {
		t.Errorf("max degree = %d, want heavy tail", g.MaxDegree())
	}
}

func TestErdosRenyiDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := ErdosRenyi(2000, 4.0, rng)
	if ad := g.AvgDegree(); ad < 3.4 || ad > 4.6 {
		t.Errorf("ER avg degree = %.2f, want ~4", ad)
	}
}

func TestSmallWorldShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := SmallWorld(300, 4, 0.1, rng)
	if g.NumNodes() != 300 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if ad := g.AvgDegree(); ad < 3 || ad > 5 {
		t.Errorf("WS avg degree = %.2f, want ~4", ad)
	}
}

func TestSummarize(t *testing.T) {
	g := MustGenerate(GNU, Options{Scale: 0.1, Seed: 1})
	s := Summarize(GNU, g)
	if s.Name != GNU || s.Nodes != g.NumNodes() || s.Edges != g.NumEdges() {
		t.Errorf("summary mismatch: %+v vs %v", s, g)
	}
}
