package baseline

import (
	"testing"

	"ned/internal/graph"
)

func TestRoleSimSelfSimilarityIsOne(t *testing.T) {
	g := ring(5)
	rs := NewRoleSim(g, RoleSimOptions{})
	for v := 0; v < 5; v++ {
		if s := rs.Score(graph.NodeID(v), graph.NodeID(v)); s != 1 {
			t.Errorf("r(%d,%d) = %v, want 1", v, v, s)
		}
	}
}

func TestRoleSimBoundedAndSymmetric(t *testing.T) {
	b := graph.NewBuilder(6, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	rs := NewRoleSim(g, RoleSimOptions{Beta: 0.2, Iterations: 5})
	for a := 0; a < 6; a++ {
		for bb := 0; bb < 6; bb++ {
			s := rs.Score(graph.NodeID(a), graph.NodeID(bb))
			if s < 0 || s > 1+1e-9 {
				t.Fatalf("r(%d,%d) = %v out of range", a, bb, s)
			}
			if s != rs.Score(graph.NodeID(bb), graph.NodeID(a)) {
				t.Fatalf("asymmetric at (%d,%d)", a, bb)
			}
		}
	}
}

func TestRoleSimAutomorphicNodesScoreOne(t *testing.T) {
	// In a cycle every node is automorphically equivalent; RoleSim's
	// admissibility axiom requires r = 1 for automorphic pairs.
	g := ring(6)
	rs := NewRoleSim(g, RoleSimOptions{Iterations: 8})
	for v := 1; v < 6; v++ {
		if s := rs.Score(0, graph.NodeID(v)); s < 0.999 {
			t.Errorf("automorphic pair (0,%d) scored %v, want ~1", v, s)
		}
	}
}

func TestRoleSimDistinguishesRoles(t *testing.T) {
	// A star: the center's role differs from the leaves'.
	b := graph.NewBuilder(5, false)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g := b.Build()
	rs := NewRoleSim(g, RoleSimOptions{Iterations: 6})
	leafLeaf := rs.Score(1, 2)
	centerLeaf := rs.Score(0, 1)
	if leafLeaf <= centerLeaf {
		t.Errorf("leaf-leaf %v should exceed center-leaf %v", leafLeaf, centerLeaf)
	}
}
