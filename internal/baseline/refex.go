package baseline

import (
	"math"

	"ned/internal/graph"
)

// FeatureVector is a node's structural feature vector; comparable across
// graphs because every entry is derived purely from topology.
type FeatureVector []float64

// RegionalFeatures computes ReFeX-style recursive structural features
// [Henderson et al., KDD'11] for one node:
//
//	depth 0 (local + egonet): degree, egonet internal edge count, egonet
//	boundary edge count — the NetSimile/OddBall feature core;
//	depth r: the sum and the mean over the node's neighbors of every
//	depth r-1 feature.
//
// depth hops of recursion make the vector sensitive to a (depth+1)-hop
// neighborhood, mirroring NED's parameter k. Feature values are
// log-scaled (log1p) as a stand-in for ReFeX's vertical logarithmic
// binning, which keeps heavy-tailed degree features from dominating the
// distance.
func RegionalFeatures(g *graph.Graph, v graph.NodeID, depth int) FeatureVector {
	base := baseFeatures(g)
	cur := base
	for r := 0; r < depth; r++ {
		cur = aggregate(g, cur)
	}
	f := append(FeatureVector(nil), cur[v]...)
	for i, x := range f {
		f[i] = math.Log1p(x)
	}
	return f
}

// RegionalFeaturesLocal computes the same vector as RegionalFeatures but
// touches only the (depth+2)-hop ball around v — the true per-node cost
// of the baseline, used by the Figure 9a per-pair timing. The extra two
// hops cover the egonet base features (one hop of boundary) and the
// outermost aggregation round.
func RegionalFeaturesLocal(g *graph.Graph, v graph.NodeID, depth int) FeatureVector {
	sub, root, _ := graph.KHopSubgraph(g, v, depth+2)
	return RegionalFeatures(sub, root, depth)
}

// RegionalFeaturesAll computes the feature matrix for every node at once,
// which is how the §13.4 query experiments batch the baseline.
func RegionalFeaturesAll(g *graph.Graph, depth int) []FeatureVector {
	cur := baseFeatures(g)
	for r := 0; r < depth; r++ {
		cur = aggregate(g, cur)
	}
	out := make([]FeatureVector, len(cur))
	for v, row := range cur {
		f := make(FeatureVector, len(row))
		for i, x := range row {
			f[i] = math.Log1p(x)
		}
		out[v] = f
	}
	return out
}

// NetSimileFeatures returns the 7-feature NetSimile node vector
// [Berlingerio et al.]: degree, clustering coefficient, average neighbor
// degree, average neighbor clustering, egonet edges, egonet boundary
// edges, egonet neighbor count. It looks only at the ego-net, which is
// exactly the limitation §1 attributes to NetSimile/OddBall.
func NetSimileFeatures(g *graph.Graph, v graph.NodeID) FeatureVector {
	cc := clusteringCoefficients(g)
	deg := float64(g.Degree(v))
	ns := g.Neighbors(v)
	var avgNbrDeg, avgNbrCC float64
	for _, u := range ns {
		avgNbrDeg += float64(g.Degree(u))
		avgNbrCC += cc[u]
	}
	if len(ns) > 0 {
		avgNbrDeg /= float64(len(ns))
		avgNbrCC /= float64(len(ns))
	}
	inE, outE, nbrs := egonet(g, v)
	return FeatureVector{deg, cc[v], avgNbrDeg, avgNbrCC, float64(inE), float64(outE), float64(nbrs)}
}

// L1 returns the Manhattan distance between two feature vectors; vectors
// of unequal length compare only their common prefix and count the rest
// as unmatched mass, so callers should use equal depths.
func L1(a, b FeatureVector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var d float64
	for i := 0; i < n; i++ {
		d += math.Abs(a[i] - b[i])
	}
	for i := n; i < len(a); i++ {
		d += math.Abs(a[i])
	}
	for i := n; i < len(b); i++ {
		d += math.Abs(b[i])
	}
	return d
}

// L2 returns the Euclidean distance between two equal-length vectors.
func L2(a, b FeatureVector) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}

// baseFeatures computes the depth-0 feature rows for every node:
// degree, egonet internal edges, egonet boundary edges.
func baseFeatures(g *graph.Graph) [][]float64 {
	n := g.NumNodes()
	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		inE, outE, _ := egonet(g, graph.NodeID(v))
		out[v] = []float64{float64(g.Degree(graph.NodeID(v))), float64(inE), float64(outE)}
	}
	return out
}

// aggregate appends neighbor-sum and neighbor-mean of each feature.
func aggregate(g *graph.Graph, feats [][]float64) [][]float64 {
	n := g.NumNodes()
	width := len(feats[0])
	out := make([][]float64, n)
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.NodeID(v))
		row := make([]float64, width*3)
		copy(row, feats[v])
		for _, u := range ns {
			for i, x := range feats[u] {
				row[width+i] += x
			}
		}
		if len(ns) > 0 {
			for i := 0; i < width; i++ {
				row[2*width+i] = row[width+i] / float64(len(ns))
			}
		}
		out[v] = row
	}
	return out
}

// egonet returns (internal edges, boundary edges, distinct 2-hop
// boundary nodes) of v's ego-net.
func egonet(g *graph.Graph, v graph.NodeID) (internal, boundary, nbrs int) {
	members := map[graph.NodeID]bool{v: true}
	for _, u := range g.Neighbors(v) {
		members[u] = true
	}
	outside := map[graph.NodeID]bool{}
	for m := range members {
		for _, u := range g.Neighbors(m) {
			if members[u] {
				if m < u {
					internal++
				}
			} else {
				boundary++
				outside[u] = true
			}
		}
	}
	return internal, boundary, len(outside)
}

// clusteringCoefficients returns the local clustering coefficient of
// every node (triangles over wedge pairs).
func clusteringCoefficients(g *graph.Graph) []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	for v := 0; v < n; v++ {
		ns := g.Neighbors(graph.NodeID(v))
		d := len(ns)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(ns[i], ns[j]) {
					links++
				}
			}
		}
		cc[v] = 2 * float64(links) / (float64(d) * float64(d-1))
	}
	return cc
}
