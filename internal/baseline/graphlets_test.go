package baseline

import (
	"math"
	"testing"

	"ned/internal/graph"
)

// expm1 undoes the log1p scaling for exact count assertions.
func count(f FeatureVector, i int) float64 {
	return math.Round(math.Expm1(f[i]))
}

func TestGraphletsOnTriangle(t *testing.T) {
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	f := GraphletFeatures(g, 0)
	if got := count(f, 0); got != 2 {
		t.Errorf("degree = %v, want 2", got)
	}
	if got := count(f, 1); got != 1 {
		t.Errorf("wedge centers = %v, want 1", got)
	}
	if got := count(f, 3); got != 1 {
		t.Errorf("triangles = %v, want 1", got)
	}
	if got := count(f, 2); got != 0 {
		t.Errorf("induced wedge ends = %v, want 0 (all wedges close)", got)
	}
}

func TestGraphletsOnStar(t *testing.T) {
	// Star with center 0 and 4 leaves.
	b := graph.NewBuilder(5, false)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	g := b.Build()
	center := GraphletFeatures(g, 0)
	if got := count(center, 1); got != 6 { // C(4,2) wedges
		t.Errorf("center wedges = %v, want 6", got)
	}
	if got := count(center, 3); got != 0 {
		t.Errorf("center triangles = %v, want 0", got)
	}
	if got := count(center, 4); got != 4 { // C(4,3) claws
		t.Errorf("center 3-stars = %v, want 4", got)
	}
	leaf := GraphletFeatures(g, 1)
	if got := count(leaf, 2); got != 3 { // leaf-center-otherleaf paths
		t.Errorf("leaf wedge ends = %v, want 3", got)
	}
}

func TestGraphletsOnSquare(t *testing.T) {
	b := graph.NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Build()
	f := GraphletFeatures(g, 0)
	if got := count(f, 6); got != 1 {
		t.Errorf("4-cycles = %v, want 1", got)
	}
	if got := count(f, 3); got != 0 {
		t.Errorf("triangles = %v, want 0", got)
	}
}

func TestGraphletsEquivalentNodesMatch(t *testing.T) {
	// All nodes of a cycle are equivalent.
	g := ring(7)
	ref := GraphletFeatures(g, 0)
	for v := 1; v < 7; v++ {
		f := GraphletFeatures(g, graph.NodeID(v))
		if L1(ref, f) != 0 {
			t.Fatalf("cycle node %d graphlet features differ", v)
		}
	}
}

func TestGraphletFeaturesAll(t *testing.T) {
	g := ring(6)
	all := GraphletFeaturesAll(g)
	if len(all) != 6 {
		t.Fatalf("got %d vectors", len(all))
	}
	for v := range all {
		single := GraphletFeatures(g, graph.NodeID(v))
		if L1(all[v], single) != 0 {
			t.Fatalf("node %d: batch differs from single", v)
		}
	}
}

func TestGraphletsIsolatedNode(t *testing.T) {
	g := graph.NewBuilder(3, false)
	g.AddEdge(1, 2)
	f := GraphletFeatures(g.Build(), 0)
	for i, x := range f {
		if x != 0 {
			t.Errorf("isolated node feature %d = %v, want 0", i, x)
		}
	}
}
