package baseline

import (
	"testing"

	"ned/internal/graph"
)

func TestSimRankSelfSimilarityIsOne(t *testing.T) {
	g := ring(6)
	sr := NewSimRank(g, SimRankOptions{})
	for v := 0; v < 6; v++ {
		if s := sr.Score(graph.NodeID(v), graph.NodeID(v)); s != 1 {
			t.Errorf("s(%d,%d) = %v, want 1", v, v, s)
		}
	}
}

func TestSimRankSymmetric(t *testing.T) {
	b := graph.NewBuilder(5, false)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	sr := NewSimRank(g, SimRankOptions{})
	for a := 0; a < 5; a++ {
		for bb := 0; bb < 5; bb++ {
			if sr.Score(graph.NodeID(a), graph.NodeID(bb)) != sr.Score(graph.NodeID(bb), graph.NodeID(a)) {
				t.Fatalf("asymmetric at (%d,%d)", a, bb)
			}
		}
	}
}

func TestSimRankStructurallySimilarNodesScoreHigher(t *testing.T) {
	// Nodes 1 and 2 both hang off node 0 (same in-neighborhood);
	// node 4 hangs off 3. s(1,2) should beat s(1,4).
	b := graph.NewBuilder(5, true)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	sr := NewSimRank(g, SimRankOptions{})
	if sr.Score(1, 2) <= sr.Score(1, 4) {
		t.Errorf("s(1,2)=%v should exceed s(1,4)=%v", sr.Score(1, 2), sr.Score(1, 4))
	}
}

func TestSimRankScoresBounded(t *testing.T) {
	g := ring(8)
	sr := NewSimRank(g, SimRankOptions{Decay: 0.6, Iterations: 8})
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			s := sr.Score(graph.NodeID(a), graph.NodeID(b))
			if s < 0 || s > 1 {
				t.Fatalf("s(%d,%d) = %v out of [0,1]", a, b, s)
			}
		}
	}
}

func TestSimRankInterGraphIsAlwaysZero(t *testing.T) {
	// The executable version of the §2 argument: link-based similarity
	// cannot compare nodes of different graphs.
	ga := ring(5)
	gb := ring(7)
	for u := 0; u < 5; u++ {
		for v := 0; v < 7; v += 3 {
			if s := SimRankInterGraph(ga, graph.NodeID(u), gb, graph.NodeID(v), SimRankOptions{}); s != 0 {
				t.Fatalf("inter-graph SimRank(%d,%d) = %v, want 0", u, v, s)
			}
		}
	}
}
