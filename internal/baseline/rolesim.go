package baseline

import (
	"ned/internal/graph"
	"ned/internal/hungarian"
)

// RoleSim computes the RoleSim role similarity [Jin, Lee, Hong, KDD'11],
// the axiomatic intra-graph measure the paper contrasts with its metric
// properties in §8. RoleSim refines SimRank by matching neighbor sets
// with a maximal bipartite matching instead of averaging over all pairs:
//
//	r(a,b) = (1−β) · max_M Σ_{(i,j)∈M} r(i,j) / max(|N(a)|,|N(b)|) + β
//
// where M ranges over matchings between N(a) and N(b). This package
// solves the inner matching exactly with the Hungarian solver (the
// original paper uses a greedy approximation), so the admissibility
// properties hold exactly on small graphs.
type RoleSim struct {
	n int
	s []float64
}

// RoleSimOptions tunes the iteration.
type RoleSimOptions struct {
	// Beta is the decay/damping in (0,1); default 0.15.
	Beta float64
	// Iterations of the recurrence; default 6.
	Iterations int
}

func (o *RoleSimOptions) defaults() {
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = 0.15
	}
	if o.Iterations <= 0 {
		o.Iterations = 6
	}
}

// NewRoleSim iterates RoleSim on g, starting from the all-ones matrix
// (the "admissible" initialization). Each iteration solves one
// assignment problem per node pair, so keep graphs small (hundreds of
// nodes) — this baseline exists for the related-work comparison, not
// for production workloads.
func NewRoleSim(g *graph.Graph, opts RoleSimOptions) *RoleSim {
	opts.defaults()
	n := g.NumNodes()
	rs := &RoleSim{n: n, s: make([]float64, n*n)}
	for i := range rs.s {
		rs.s[i] = 1
	}
	next := make([]float64, n*n)
	// Scale float similarities to int64 costs for the Hungarian solver.
	const scale = 1 << 20
	for it := 0; it < opts.Iterations; it++ {
		for a := 0; a < n; a++ {
			next[a*n+a] = 1
			na := g.Neighbors(graph.NodeID(a))
			for b := a + 1; b < n; b++ {
				nb := g.Neighbors(graph.NodeID(b))
				if len(na) == 0 || len(nb) == 0 {
					v := opts.Beta
					next[a*n+b] = v
					next[b*n+a] = v
					continue
				}
				// Maximize Σ r(i,j) over matchings = minimize Σ (1 − r).
				dim := len(na)
				if len(nb) > dim {
					dim = len(nb)
				}
				cost := make([][]int64, dim)
				for i := range cost {
					cost[i] = make([]int64, dim)
					for j := range cost[i] {
						r := 0.0
						if i < len(na) && j < len(nb) {
							r = rs.s[int(na[i])*n+int(nb[j])]
						}
						cost[i][j] = int64((1 - r) * scale)
					}
				}
				total, _ := hungarian.Solve(cost)
				matchSum := float64(dim) - float64(total)/scale
				// Padded rows/columns matched with r = 0 contribute
				// nothing to matchSum beyond min(|na|,|nb|) real pairs.
				maxDeg := float64(dim)
				v := (1-opts.Beta)*matchSum/maxDeg + opts.Beta
				next[a*n+b] = v
				next[b*n+a] = v
			}
		}
		rs.s, next = next, rs.s
	}
	return rs
}

// Score returns r(a, b) in [0, 1].
func (rs *RoleSim) Score(a, b graph.NodeID) float64 {
	return rs.s[int(a)*rs.n+int(b)]
}
