package baseline

import (
	"math"

	"ned/internal/graph"
)

// GraphletFeatures computes the graphlet-degree feature vector of a node
// (§2's third baseline family [18, 6, 21]): how many times the node
// participates in each small connected induced pattern. The vector
// covers the orbits of graphlets with up to four nodes that are
// countable in O(deg²)–O(deg³) time:
//
//	[0] edges            — degree (2-node graphlet)
//	[1] wedge centers    — 2-paths centered at the node
//	[2] wedge ends       — 2-paths with the node as an endpoint
//	[3] triangles        — 3-cliques containing the node
//	[4] 3-star centers   — claws centered at the node
//	[5] 4-path ends      — paths a-b-c-d with the node at an end
//	[6] 4-cycles         — squares containing the node
//
// Values are log1p-scaled like the ReFeX features so heavy-tailed counts
// do not dominate distances.
func GraphletFeatures(g *graph.Graph, v graph.NodeID) FeatureVector {
	deg := float64(g.Degree(v))
	wedgeCenter := 0.0
	if d := g.Degree(v); d >= 2 {
		wedgeCenter = float64(d*(d-1)) / 2
	}
	wedgeEnd := 0.0
	for _, u := range g.Neighbors(v) {
		wedgeEnd += float64(g.Degree(u) - 1)
	}
	triangles := 0.0
	ns := g.Neighbors(v)
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			if g.HasEdge(ns[i], ns[j]) {
				triangles++
			}
		}
	}
	// Wedge-end counts above include triangle paths; the induced 2-path
	// count excludes pairs that close a triangle.
	wedgeEndInduced := wedgeEnd - 2*triangles
	starCenter := 0.0
	if d := g.Degree(v); d >= 3 {
		starCenter = float64(d*(d-1)*(d-2)) / 6
	}
	// 4-paths with v at an end: v-a-b-c with distinct nodes. Count walks
	// and subtract short-circuit configurations approximately via
	// distinctness checks (exact enumeration, bounded by deg³).
	fourPath := 0.0
	for _, a := range g.Neighbors(v) {
		for _, b := range g.Neighbors(a) {
			if b == v {
				continue
			}
			for _, c := range g.Neighbors(b) {
				if c == v || c == a {
					continue
				}
				fourPath++
			}
		}
	}
	// 4-cycles through v: neighbors a != c of v sharing a second common
	// neighbor b != v.
	fourCycle := 0.0
	for i := 0; i < len(ns); i++ {
		for j := i + 1; j < len(ns); j++ {
			fourCycle += float64(commonNeighborsExcluding(g, ns[i], ns[j], v))
		}
	}

	f := FeatureVector{deg, wedgeCenter, wedgeEndInduced, triangles, starCenter, fourPath, fourCycle}
	for i, x := range f {
		if x < 0 {
			x = 0
		}
		f[i] = math.Log1p(x)
	}
	return f
}

// GraphletFeaturesAll computes graphlet features for every node.
func GraphletFeaturesAll(g *graph.Graph) []FeatureVector {
	out := make([]FeatureVector, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		out[v] = GraphletFeatures(g, graph.NodeID(v))
	}
	return out
}

// commonNeighborsExcluding counts nodes adjacent to both a and b, other
// than x. Adjacency lists are sorted, so a linear merge suffices.
func commonNeighborsExcluding(g *graph.Graph, a, b, x graph.NodeID) int {
	na, nb := g.Neighbors(a), g.Neighbors(b)
	i, j, n := 0, 0, 0
	for i < len(na) && j < len(nb) {
		switch {
		case na[i] == nb[j]:
			if na[i] != x {
				n++
			}
			i++
			j++
		case na[i] < nb[j]:
			i++
		default:
			j++
		}
	}
	return n
}
