// Package baseline implements the two competing inter-graph node
// similarity families the NED paper evaluates against in §13.4–13.5:
// the HITS-based similarity of Blondel et al. and the Feature-based
// (ReFeX-style recursive feature) similarity, of which NetSimile and
// OddBall are the depth-0 special cases.
package baseline

import (
	"math"

	"ned/internal/graph"
)

// HITSSimilarity holds the converged Blondel et al. similarity matrix
// between all node pairs of two graphs: Score(u, v) couples node u of
// graph B with node v of graph A. Higher scores mean more similar; the
// measure is neither a metric nor bounded per pair (§2), which is exactly
// the deficiency the paper contrasts NED against.
type HITSSimilarity struct {
	nA, nB int
	s      []float64 // row-major nB × nA
	iters  int
}

// HITSOptions tunes the fixed-point iteration.
type HITSOptions struct {
	// MaxIters caps the iteration count; it is rounded up to an even
	// number because the similarity sequence converges on even iterates
	// (Blondel et al. §4). Default 100.
	MaxIters int
	// Tolerance is the Frobenius-norm change below which iteration stops
	// (checked on even iterates). Default 1e-9.
	Tolerance float64
}

func (o *HITSOptions) defaults() {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.MaxIters%2 == 1 {
		o.MaxIters++
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-9
	}
}

// NewHITSSimilarity runs the coupled fixed-point iteration
//
//	S_{k+1} = B·S_k·Aᵀ + Bᵀ·S_k·A,   S normalized to unit Frobenius norm
//
// where A and B are the adjacency matrices of ga and gb. The adjacency
// structure is consumed in sparse form, so one iteration costs
// O(nB·mA + nA·mB). Undirected graphs use their symmetric adjacency.
func NewHITSSimilarity(ga, gb *graph.Graph, opts HITSOptions) *HITSSimilarity {
	opts.defaults()
	nA, nB := ga.NumNodes(), gb.NumNodes()
	h := &HITSSimilarity{nA: nA, nB: nB}
	if nA == 0 || nB == 0 {
		return h
	}
	s := make([]float64, nB*nA)
	for i := range s {
		s[i] = 1
	}
	normalize(s)
	tmp := make([]float64, nB*nA)  // S·Aᵀ and Bᵀ·S·A workspace
	next := make([]float64, nB*nA) // S_{k+1}
	prevEven := append([]float64(nil), s...)

	for it := 1; it <= opts.MaxIters; it++ {
		// tmp = S·Aᵀ  (tmp[p][j] = Σ_{q ∈ N_A(j)} S[p][q]; A symmetric for
		// undirected graphs, and for directed ones N uses in-neighbors so
		// the product matches S·Aᵀ).
		for p := 0; p < nB; p++ {
			row := s[p*nA : (p+1)*nA]
			out := tmp[p*nA : (p+1)*nA]
			for j := 0; j < nA; j++ {
				var sum float64
				for _, q := range ga.OutNeighbors(graph.NodeID(j)) {
					sum += row[q]
				}
				out[j] = sum
			}
		}
		// next = B·tmp  (next[i][j] = Σ_{p ∈ N_B(i)} tmp[p][j]).
		for i := 0; i < nB; i++ {
			out := next[i*nA : (i+1)*nA]
			for j := range out {
				out[j] = 0
			}
			for _, p := range gb.OutNeighbors(graph.NodeID(i)) {
				row := tmp[int(p)*nA : (int(p)+1)*nA]
				for j := 0; j < nA; j++ {
					out[j] += row[j]
				}
			}
		}
		// next += Bᵀ·S·A. For undirected graphs Bᵀ = B and A = Aᵀ, so the
		// second term equals the first and a plain doubling suffices.
		if !ga.Directed() && !gb.Directed() {
			for i := range next {
				next[i] *= 2
			}
		} else {
			// tmp = S·A (tmp[p][j] = Σ_{q : j ∈ N_A(q)} ... computed via
			// in-neighbors of j).
			for p := 0; p < nB; p++ {
				row := s[p*nA : (p+1)*nA]
				out := tmp[p*nA : (p+1)*nA]
				for j := 0; j < nA; j++ {
					var sum float64
					for _, q := range ga.InNeighbors(graph.NodeID(j)) {
						sum += row[q]
					}
					out[j] = sum
				}
			}
			for i := 0; i < nB; i++ {
				out := next[i*nA : (i+1)*nA]
				for _, p := range gb.InNeighbors(graph.NodeID(i)) {
					row := tmp[int(p)*nA : (int(p)+1)*nA]
					for j := 0; j < nA; j++ {
						out[j] += row[j]
					}
				}
			}
		}
		normalize(next)
		s, next = next, s
		h.iters = it
		if it%2 == 0 {
			if frobeniusDelta(s, prevEven) < opts.Tolerance {
				break
			}
			copy(prevEven, s)
		}
	}
	h.s = s
	return h
}

// Score returns the similarity between node b of graph B and node a of
// graph A.
func (h *HITSSimilarity) Score(b, a graph.NodeID) float64 {
	if h.s == nil {
		return 0
	}
	return h.s[int(b)*h.nA+int(a)]
}

// Iterations reports how many iterations ran before convergence.
func (h *HITSSimilarity) Iterations() int { return h.iters }

func normalize(s []float64) {
	var norm float64
	for _, v := range s {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range s {
		s[i] /= norm
	}
}

func frobeniusDelta(a, b []float64) float64 {
	var d float64
	for i := range a {
		diff := a[i] - b[i]
		d += diff * diff
	}
	return math.Sqrt(d)
}
