package baseline

import (
	"math"
	"math/rand"
	"testing"

	"ned/internal/graph"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n, false)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func TestHITSIdenticalGraphsSelfSimilarity(t *testing.T) {
	// On two copies of a path, the HITS similarity of structurally
	// equivalent positions should dominate: compare an interior node's
	// score against itself vs against an endpoint.
	b := graph.NewBuilder(5, false)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g := b.Build()
	h := NewHITSSimilarity(g, g, HITSOptions{})
	if h.Score(2, 2) <= h.Score(2, 0) {
		t.Errorf("interior-interior %v should beat interior-endpoint %v",
			h.Score(2, 2), h.Score(2, 0))
	}
	if h.Iterations() == 0 {
		t.Error("no iterations ran")
	}
}

func TestHITSMatrixIsNormalized(t *testing.T) {
	g1 := ring(6)
	g2 := ring(8)
	h := NewHITSSimilarity(g1, g2, HITSOptions{MaxIters: 10})
	var frob float64
	for b := 0; b < 8; b++ {
		for a := 0; a < 6; a++ {
			s := h.Score(graph.NodeID(b), graph.NodeID(a))
			if s < 0 {
				t.Fatalf("negative similarity %v", s)
			}
			frob += s * s
		}
	}
	if math.Abs(math.Sqrt(frob)-1) > 1e-6 {
		t.Errorf("Frobenius norm = %v, want 1", math.Sqrt(frob))
	}
}

func TestHITSEmptyGraph(t *testing.T) {
	empty := graph.NewBuilder(0, false).Build()
	h := NewHITSSimilarity(empty, ring(4), HITSOptions{})
	if s := h.Score(0, 0); s != 0 {
		t.Errorf("empty graph score = %v", s)
	}
}

func TestHITSDirected(t *testing.T) {
	// A directed 3-cycle against itself must not blow up and must stay
	// normalized.
	b := graph.NewBuilder(3, true)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Build()
	h := NewHITSSimilarity(g, g, HITSOptions{MaxIters: 8})
	var frob float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := h.Score(graph.NodeID(i), graph.NodeID(j))
			frob += s * s
		}
	}
	if math.Abs(math.Sqrt(frob)-1) > 1e-6 {
		t.Errorf("directed Frobenius norm = %v, want 1", math.Sqrt(frob))
	}
}

func TestRegionalFeaturesShapeAndDeterminism(t *testing.T) {
	g := ring(10)
	f0 := RegionalFeatures(g, 0, 0)
	if len(f0) != 3 {
		t.Errorf("depth 0 feature count = %d, want 3", len(f0))
	}
	f1 := RegionalFeatures(g, 0, 1)
	if len(f1) != 9 {
		t.Errorf("depth 1 feature count = %d, want 9 (3 * 3)", len(f1))
	}
	f2 := RegionalFeatures(g, 0, 2)
	if len(f2) != 27 {
		t.Errorf("depth 2 feature count = %d, want 27", len(f2))
	}
	again := RegionalFeatures(g, 0, 2)
	for i := range f2 {
		if f2[i] != again[i] {
			t.Fatal("non-deterministic features")
		}
	}
}

func TestRegionalFeaturesEquivalentNodes(t *testing.T) {
	// All ring nodes are structurally equivalent: identical features.
	g := ring(8)
	ref := RegionalFeatures(g, 0, 2)
	for v := 1; v < 8; v++ {
		f := RegionalFeatures(g, graph.NodeID(v), 2)
		if L1(ref, f) != 0 {
			t.Fatalf("ring node %d features differ from node 0", v)
		}
	}
}

func TestRegionalFeaturesAllMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(30, false)
	for i := 0; i < 80; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(30)), graph.NodeID(rng.Intn(30)))
	}
	g := b.Build()
	all := RegionalFeaturesAll(g, 2)
	for v := 0; v < 30; v += 7 {
		single := RegionalFeatures(g, graph.NodeID(v), 2)
		if L1(all[v], single) > 1e-12 {
			t.Fatalf("node %d: batch features differ from single", v)
		}
	}
}

func TestRegionalFeaturesLocalMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := graph.NewBuilder(60, false)
	for i := 0; i < 150; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(60)), graph.NodeID(rng.Intn(60)))
	}
	g := b.Build()
	for depth := 0; depth <= 2; depth++ {
		for v := 0; v < 60; v += 11 {
			global := RegionalFeatures(g, graph.NodeID(v), depth)
			local := RegionalFeaturesLocal(g, graph.NodeID(v), depth)
			if L1(global, local) > 1e-9 {
				t.Fatalf("depth %d node %d: local features diverge (L1 = %v)",
					depth, v, L1(global, local))
			}
		}
	}
}

func TestNetSimileFeatures(t *testing.T) {
	// Triangle: every node has degree 2, clustering 1.
	b := graph.NewBuilder(3, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	f := NetSimileFeatures(g, 0)
	if len(f) != 7 {
		t.Fatalf("NetSimile feature count = %d, want 7", len(f))
	}
	if f[0] != 2 {
		t.Errorf("degree = %v, want 2", f[0])
	}
	if f[1] != 1 {
		t.Errorf("clustering = %v, want 1", f[1])
	}
	if f[4] != 3 { // egonet internal edges
		t.Errorf("egonet edges = %v, want 3", f[4])
	}
	if f[5] != 0 { // no boundary
		t.Errorf("egonet boundary = %v, want 0", f[5])
	}
}

func TestL1AndL2(t *testing.T) {
	a := FeatureVector{1, 2, 3}
	b := FeatureVector{2, 2, 5}
	if d := L1(a, b); d != 3 {
		t.Errorf("L1 = %v, want 3", d)
	}
	if d := L2(a, b); math.Abs(d-math.Sqrt(5)) > 1e-12 {
		t.Errorf("L2 = %v, want sqrt(5)", d)
	}
	// Unequal lengths: excess mass counts.
	c := FeatureVector{1, 2, 3, 4}
	if d := L1(a, c); d != 4 {
		t.Errorf("L1 with excess = %v, want 4", d)
	}
	if L1(a, b) != L1(b, a) {
		t.Error("L1 must be symmetric")
	}
}

func TestFeatureBlindSpot(t *testing.T) {
	// The paper's critique (§2): feature vectors can coincide for nodes
	// whose neighborhoods differ. Two 4-cycles joined at node 0 versus an
	// 8-cycle: node degree/egonet stats at depth 0 agree for some nodes
	// even though neighborhoods differ. Just assert the distance CAN be
	// zero for non-equivalent nodes at depth 0 (documenting the
	// limitation NED fixes).
	c8 := ring(8)
	b := graph.NewBuilder(7, false)
	// Two squares sharing node 0: 0-1-2-3-0 and 0-4-5-6-0.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {4, 5}, {5, 6}, {6, 0}} {
		b.AddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	gsq := b.Build()
	fRing := RegionalFeatures(c8, 1, 0)
	fSq := RegionalFeatures(gsq, 1, 0)
	if L1(fRing, fSq) != 0 {
		t.Skip("depth-0 features distinguish these nodes on this construction")
	}
}
