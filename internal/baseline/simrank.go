package baseline

import (
	"ned/internal/graph"
)

// SimRank computes the classic intra-graph SimRank similarity matrix
// [Jeh & Widom, KDD'02]: s(a,b) = C/(|I(a)||I(b)|) Σ s(i,j) over
// in-neighbor pairs, s(a,a) = 1. It is included as the representative
// link-based baseline of §2 — and to demonstrate its limitation: SimRank
// is only defined within one graph, so inter-graph node pairs (which
// share no connecting paths) always score zero. See SimRankInterGraph.
type SimRank struct {
	n int
	s []float64 // row-major n×n
}

// SimRankOptions tunes the fixed point iteration.
type SimRankOptions struct {
	// Decay is the C constant in (0,1); default 0.8.
	Decay float64
	// Iterations of the recurrence; default 10 (SimRank converges
	// geometrically).
	Iterations int
}

func (o *SimRankOptions) defaults() {
	if o.Decay <= 0 || o.Decay >= 1 {
		o.Decay = 0.8
	}
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
}

// NewSimRank iterates the SimRank recurrence on g. Cost per iteration is
// O(n²·d²̄) in the worst case; intended for the small demonstration
// graphs of the related-work comparison, not production workloads.
func NewSimRank(g *graph.Graph, opts SimRankOptions) *SimRank {
	opts.defaults()
	n := g.NumNodes()
	sr := &SimRank{n: n, s: make([]float64, n*n)}
	for i := 0; i < n; i++ {
		sr.s[i*n+i] = 1
	}
	next := make([]float64, n*n)
	for it := 0; it < opts.Iterations; it++ {
		for a := 0; a < n; a++ {
			next[a*n+a] = 1
			ia := g.InNeighbors(graph.NodeID(a))
			for b := a + 1; b < n; b++ {
				ib := g.InNeighbors(graph.NodeID(b))
				if len(ia) == 0 || len(ib) == 0 {
					next[a*n+b] = 0
					next[b*n+a] = 0
					continue
				}
				var sum float64
				for _, i := range ia {
					row := sr.s[int(i)*n:]
					for _, j := range ib {
						sum += row[j]
					}
				}
				v := opts.Decay * sum / float64(len(ia)*len(ib))
				next[a*n+b] = v
				next[b*n+a] = v
			}
		}
		sr.s, next = next, sr.s
	}
	return sr
}

// Score returns s(a, b) in [0, 1].
func (sr *SimRank) Score(a, b graph.NodeID) float64 {
	return sr.s[int(a)*sr.n+int(b)]
}

// SimRankInterGraph evaluates what happens when SimRank is forced onto
// an inter-graph pair the only way possible — running it on the disjoint
// union of the two graphs: nodes from different components have no
// common in-neighbor paths, so their similarity is identically zero.
// The function returns that score (always 0 for u in ga, v in gb),
// making the §2 argument executable.
func SimRankInterGraph(ga *graph.Graph, u graph.NodeID, gb *graph.Graph, v graph.NodeID, opts SimRankOptions) float64 {
	// Build the disjoint union.
	b := graph.NewBuilder(ga.NumNodes()+gb.NumNodes(), ga.Directed() || gb.Directed())
	for _, e := range ga.Edges() {
		b.AddEdge(e.U, e.V)
	}
	off := graph.NodeID(ga.NumNodes())
	for _, e := range gb.Edges() {
		b.AddEdge(e.U+off, e.V+off)
	}
	union := b.Build()
	sr := NewSimRank(union, opts)
	return sr.Score(u, v+off)
}
