package vptree

import (
	"math/rand"
	"sort"
	"testing"
)

func intDist(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func TestBKRangeMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	items := make([]int, 500)
	for i := range items {
		items[i] = rng.Intn(200)
	}
	tr := NewBK(items, intDist)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 30; trial++ {
		q := rng.Intn(220)
		r := rng.Intn(15)
		got := tr.Range(q, r)
		want := 0
		for _, it := range items {
			if intDist(q, it) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("q=%d r=%d: got %d, want %d", q, r, len(got), want)
		}
		for _, res := range got {
			if res.Dist > r {
				t.Fatalf("result at distance %d beyond radius %d", res.Dist, r)
			}
		}
	}
}

func TestBKKNNMatchesScanDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	items := make([]int, 300)
	for i := range items {
		items[i] = rng.Intn(1000)
	}
	tr := NewBK(items, intDist)
	for trial := 0; trial < 30; trial++ {
		q := rng.Intn(1000)
		k := 1 + rng.Intn(8)
		got := tr.KNN(q, k)
		ds := make([]int, len(items))
		for i, it := range items {
			ds[i] = intDist(q, it)
		}
		sort.Ints(ds)
		if len(got) != k {
			t.Fatalf("got %d results, want %d", len(got), k)
		}
		for i := range got {
			if got[i].Dist != ds[i] {
				t.Fatalf("rank %d: distance %d, want %d", i, got[i].Dist, ds[i])
			}
		}
	}
}

func TestBKEmptyAndSmall(t *testing.T) {
	empty := NewBK[int](nil, intDist)
	if res := empty.KNN(5, 3); res != nil {
		t.Error("empty KNN should be nil")
	}
	if res := empty.Range(5, 3); res != nil {
		t.Error("empty Range should be nil")
	}
	one := NewBK([]int{42}, intDist)
	if res := one.KNN(40, 2); len(res) != 1 || res[0].Dist != 2 {
		t.Errorf("single-item KNN = %+v", res)
	}
	if res := one.KNN(40, 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestBKDuplicates(t *testing.T) {
	tr := NewBK([]int{7, 7, 7, 9}, intDist)
	res := tr.Range(7, 0)
	if len(res) != 3 {
		t.Errorf("duplicates in range: %d, want 3", len(res))
	}
}

func TestBKInsertAfterBuild(t *testing.T) {
	tr := NewBK([]int{1, 5, 9}, intDist)
	tr.Insert(6)
	if tr.Len() != 4 {
		t.Errorf("Len after insert = %d", tr.Len())
	}
	res := tr.KNN(6, 1)
	if res[0].Dist != 0 {
		t.Errorf("inserted item not found: %+v", res)
	}
}

func TestBKSavesDistanceCalls(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]int, 3000)
	for i := range items {
		items[i] = rng.Intn(10000)
	}
	tr := NewBK(items, intDist)
	tr.ResetStats()
	const queries = 40
	for q := 0; q < queries; q++ {
		tr.Range(rng.Intn(10000), 3)
	}
	if per := tr.DistanceCalls() / queries; per >= int64(len(items)) {
		t.Errorf("BK-tree did %d calls/query on %d items — no pruning", per, len(items))
	}
}
