// Package vptree implements a vantage-point tree, the metric index the
// paper pairs with NED for sub-linear nearest-neighbor queries (§13.4,
// Figure 9b). Because TED*/NED satisfy the triangle inequality (§7),
// the index prunes candidate subtrees exactly — results are identical to
// a full scan.
//
// The tree is generic over the item type; callers supply the metric.
// Queries are safe for concurrent use: the structure is immutable after
// New and the statistics counter is atomic. The Context variants check
// for cancellation inside the search loop so long queries over expensive
// metrics can be aborted.
package vptree

import (
	"container/heap"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
)

// Metric computes the distance between two items. It must satisfy the
// metric axioms for search results to be exact.
type Metric[T any] func(a, b T) float64

// BudgetedMetric is a Metric that may stop early: it returns the exact
// distance with exact == true, or — when the distance provably exceeds
// budget — any lower bound on it with exact == false. Searches use the
// budget to skip the tail of expensive evaluations (a TED* computation
// can abandon a hopeless candidate mid-way) while staying exact: a
// search only requests a budget when any distance above it can neither
// enter the result set nor change a pruning decision it is about to
// make.
type BudgetedMetric[T any] func(a, b T, budget float64) (d float64, exact bool)

// cancelCheckStride is how many metric evaluations a search performs
// between context checks. TED* evaluations dominate the cost of a visit,
// so a small stride keeps cancellation prompt without measurable
// overhead.
const cancelCheckStride = 16

// Tree is a vantage-point tree. Its structure is immutable after New;
// Delete supports logical removal via tombstones: a dead node keeps
// routing searches through its subtrees (its vantage distances stay
// valid) but can no longer appear in results. Rebuild from the live
// items once tombstones accumulate — the tree never compacts itself.
type Tree[T any] struct {
	dist  Metric[T]
	bdist BudgetedMetric[T] // optional; see SetBudgetedMetric
	less  func(a, b T) bool // optional; see SetTieBreak
	root  *node[T]
	count int // indexed points, including tombstones
	dead  int // tombstoned points

	// distCalls counts metric evaluations since the last ResetStats; the
	// Figure 9b experiment uses it to compare index vs scan work. Atomic
	// so concurrent queries may share the tree.
	distCalls atomic.Int64
}

// SetBudgetedMetric installs a budget-aware variant of the metric. KNN
// passes each node the largest distance that could still matter there —
// radius + tau for an internal node (beyond that the vantage ball is
// provably sterile and the point itself cannot rank), tau alone for a
// leaf — and Range does the same with r in place of tau. An evaluation
// that exceeds its budget skips the inside subtree and the result set
// without affecting exactness. Call before the first query; not safe
// concurrently with searches.
func (t *Tree[T]) SetBudgetedMetric(b BudgetedMetric[T]) { t.bdist = b }

// SetTieBreak installs a strict total order used to resolve equal
// distances in KNN, making the returned set deterministic and
// backend-independent: the k smallest (distance, less) pairs. Without
// it, ties at the kth distance resolve by visit order. Call before the
// first query; not safe concurrently with searches.
func (t *Tree[T]) SetTieBreak(less func(a, b T) bool) { t.less = less }

// eval computes the distance from query to n's point under the largest
// budget that could still matter at this node given the current search
// radius tau.
func (t *Tree[T]) eval(query T, n *node[T], tau float64) (d float64, exact bool) {
	t.distCalls.Add(1)
	if t.bdist == nil || tau >= inf() {
		return t.dist(query, n.point), true
	}
	budget := tau
	if n.inside != nil || n.beyond != nil {
		budget = n.radius + tau
	}
	return t.bdist(query, n.point, budget)
}

type node[T any] struct {
	point  T
	radius float64 // median distance from point to the inside subtree
	inside *node[T]
	beyond *node[T]
	dead   bool // tombstone: still routes, never a hit
}

// New builds a VP-tree over items using the supplied metric. Vantage
// points are chosen pseudo-randomly from a fixed seed so builds are
// deterministic. Building costs O(n log n) metric evaluations.
func New[T any](items []T, dist Metric[T]) *Tree[T] {
	t := &Tree[T]{dist: dist, count: len(items)}
	pts := append([]T(nil), items...)
	rng := rand.New(rand.NewSource(1))
	t.root = t.build(pts, rng)
	return t
}

func (t *Tree[T]) build(pts []T, rng *rand.Rand) *node[T] {
	if len(pts) == 0 {
		return nil
	}
	// Move a random vantage point to the front.
	i := rng.Intn(len(pts))
	pts[0], pts[i] = pts[i], pts[0]
	n := &node[T]{point: pts[0]}
	rest := pts[1:]
	if len(rest) == 0 {
		return n
	}
	ds := make([]float64, len(rest))
	for j, p := range rest {
		ds[j] = t.dist(n.point, p)
	}
	// Partition around the median distance.
	idx := make([]int, len(rest))
	for j := range idx {
		idx[j] = j
	}
	sort.Slice(idx, func(a, b int) bool { return ds[idx[a]] < ds[idx[b]] })
	mid := len(idx) / 2
	n.radius = ds[idx[mid]]
	inside := make([]T, 0, mid)
	beyond := make([]T, 0, len(idx)-mid)
	for _, j := range idx {
		if ds[j] < n.radius {
			inside = append(inside, rest[j])
		} else {
			beyond = append(beyond, rest[j])
		}
	}
	n.inside = t.build(inside, rng)
	n.beyond = t.build(beyond, rng)
	return n
}

// Len returns the number of live (non-tombstoned) indexed items.
func (t *Tree[T]) Len() int { return t.count - t.dead }

// Deleted returns how many indexed items are tombstones — structure the
// tree still pays to route through. The caller's rebuild policy watches
// this staleness.
func (t *Tree[T]) Deleted() int { return t.dead }

// Delete tombstones every live indexed item for which match returns
// true and reports how many it marked. The tree keeps its shape: dead
// nodes still route searches (their vantage distances remain valid) but
// are never returned as hits. Delete walks the whole tree and performs
// no metric evaluations. Not safe concurrently with searches.
func (t *Tree[T]) Delete(match func(T) bool) int {
	marked := 0
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		if !n.dead && match(n.point) {
			n.dead = true
			marked++
		}
		walk(n.inside)
		walk(n.beyond)
	}
	walk(t.root)
	t.dead += marked
	return marked
}

// Clone returns a structurally private copy of the tree: every node —
// including its tombstone flag — is duplicated, while the item payloads
// and the metric closures are shared. Mutating the clone (Delete) never
// touches the original, so a published tree can keep serving lock-free
// readers while its successor is prepared. Cloning walks the whole tree
// but performs no metric evaluations.
func (t *Tree[T]) Clone() *Tree[T] {
	c := &Tree[T]{dist: t.dist, bdist: t.bdist, less: t.less, count: t.count, dead: t.dead}
	if t.root == nil {
		return c
	}
	// One slab holds every cloned node: a single allocation with better
	// locality than n individual nodes, sized exactly by the build-time
	// count (the structure never grows after New).
	slab := make([]node[T], t.count)
	next := 0
	var copyNode func(n *node[T]) *node[T]
	copyNode = func(n *node[T]) *node[T] {
		if n == nil {
			return nil
		}
		nn := &slab[next]
		next++
		nn.point, nn.radius, nn.dead = n.point, n.radius, n.dead
		nn.inside = copyNode(n.inside)
		nn.beyond = copyNode(n.beyond)
		return nn
	}
	c.root = copyNode(t.root)
	return c
}

// ExportNode is one node of a preorder structure dump: the indexed
// item, its vantage radius, its tombstone flag, and which children it
// has. The sequence of ExportNodes produced by Export fully determines
// the tree — radii and split topology included — so a persisted dump
// restores with NewFromExport without a single metric evaluation,
// which is what makes checkpointed VP indexes worth carrying: New
// costs O(n log n) distance computations, restore costs none.
type ExportNode[T any] struct {
	Item   T
	Radius float64
	Dead   bool // tombstoned: routes searches, never a hit
	Inside bool // has an inside child
	Beyond bool // has a beyond child
}

// Export dumps the tree structure in preorder (node, inside subtree,
// beyond subtree). The result is deterministic for a given tree and
// round-trips through NewFromExport to a search-identical index.
func (t *Tree[T]) Export() []ExportNode[T] {
	out := make([]ExportNode[T], 0, t.count)
	var walk func(n *node[T])
	walk = func(n *node[T]) {
		if n == nil {
			return
		}
		out = append(out, ExportNode[T]{
			Item:   n.point,
			Radius: n.radius,
			Dead:   n.dead,
			Inside: n.inside != nil,
			Beyond: n.beyond != nil,
		})
		walk(n.inside)
		walk(n.beyond)
	}
	walk(t.root)
	return out
}

// NewFromExport rebuilds a tree from an Export dump, performing no
// metric evaluations: the dump's radii and topology are adopted as-is
// (they were computed by the original build), and dist is kept only
// for serving later queries. The dump is validated structurally — the
// preorder walk must consume exactly the given nodes and every radius
// must be finite and non-negative — but radii are otherwise trusted:
// a dump whose radii do not match its metric yields a tree whose
// searches are silently wrong, so callers must pair dumps with the
// same metric that built them.
func NewFromExport[T any](nodes []ExportNode[T], dist Metric[T]) (*Tree[T], error) {
	t := &Tree[T]{dist: dist, count: len(nodes)}
	if len(nodes) == 0 {
		return t, nil
	}
	const maxFinite = 1e307 // below inf(); anything larger cannot be a real radius
	slab := make([]node[T], len(nodes))
	next := 0
	var build func() (*node[T], error)
	build = func() (*node[T], error) {
		e := &nodes[next]
		if !(e.Radius >= 0) || e.Radius > maxFinite {
			return nil, fmt.Errorf("vptree: node %d has invalid radius %v", next, e.Radius)
		}
		n := &slab[next]
		next++
		n.point, n.radius, n.dead = e.Item, e.Radius, e.Dead
		if e.Dead {
			t.dead++
		}
		var err error
		if e.Inside {
			if next >= len(nodes) {
				return nil, fmt.Errorf("vptree: dump truncated inside node %d's subtree", next-1)
			}
			if n.inside, err = build(); err != nil {
				return nil, err
			}
		}
		if e.Beyond {
			if next >= len(nodes) {
				return nil, fmt.Errorf("vptree: dump truncated inside node %d's subtree", next-1)
			}
			if n.beyond, err = build(); err != nil {
				return nil, err
			}
		}
		return n, nil
	}
	root, err := build()
	if err != nil {
		return nil, err
	}
	if next != len(nodes) {
		return nil, fmt.Errorf("vptree: dump has %d trailing nodes outside the root's subtree", len(nodes)-next)
	}
	t.root = root
	return t, nil
}

// DistanceCalls returns the number of metric evaluations since the last
// ResetStats (not counting the build).
func (t *Tree[T]) DistanceCalls() int64 { return t.distCalls.Load() }

// ResetStats zeroes the metric-evaluation counter.
func (t *Tree[T]) ResetStats() { t.distCalls.Store(0) }

// Result is a search hit.
type Result[T any] struct {
	Item T
	Dist float64
}

// resultHeap is a max-heap on (Dist, tie-break) so the worst current hit
// is at the top. Without a tie-break, equal distances order by heap
// mechanics alone, reproducing the historical visit-order ties.
type resultHeap[T any] struct {
	items []Result[T]
	less  func(a, b T) bool
}

func (h *resultHeap[T]) Len() int { return len(h.items) }
func (h *resultHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return h.less != nil && h.less(b.Item, a.Item)
}
func (h *resultHeap[T]) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *resultHeap[T]) Push(x interface{}) { h.items = append(h.items, x.(Result[T])) }
func (h *resultHeap[T]) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}

// KNN returns the k nearest neighbors of query in ascending distance
// order. Ties are resolved by visit order, which is deterministic.
func (t *Tree[T]) KNN(query T, k int) []Result[T] {
	res, _ := t.KNNContext(context.Background(), query, k)
	return res
}

// KNNContext is KNN with cancellation: the search checks ctx between
// batches of metric evaluations and returns ctx.Err() with a nil result
// if the context is done before the search completes.
func (t *Tree[T]) KNNContext(ctx context.Context, query T, k int) ([]Result[T], error) {
	if k <= 0 || t.root == nil {
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h := &resultHeap[T]{less: t.less}
	tau := inf()
	evals := 0
	var searchErr error
	var visit func(n *node[T])
	visit = func(n *node[T]) {
		if n == nil || searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		if n.dead && n.inside == nil && n.beyond == nil {
			// A tombstoned leaf routes nothing and ranks nowhere: skip
			// the metric evaluation entirely.
			return
		}
		d, exact := t.eval(query, n, tau)
		evals++
		if !exact {
			// d exceeds every budget that matters here: it cannot enter
			// the result set (d > tau) and the inside ball is provably
			// sterile (d - tau > radius); only beyond can hold hits.
			visit(n.beyond)
			return
		}
		if !n.dead && (h.Len() < k || d < tau ||
			(t.less != nil && d == tau && t.less(n.point, h.items[0].Item))) {
			heap.Push(h, Result[T]{n.point, d})
			if h.Len() > k {
				heap.Pop(h)
			}
			if h.Len() == k {
				tau = h.items[0].Dist
			}
		}
		// Visit the more promising side first; prune with the triangle
		// inequality: the inside ball can contain a better hit only if
		// d - tau < radius (its membership is strict, so even an exact
		// tie on the bound cannot reach distance tau), the beyond region
		// only if d + tau >= radius.
		if d < n.radius {
			visit(n.inside)
			if h.Len() < k || d+tau >= n.radius {
				visit(n.beyond)
			}
		} else {
			visit(n.beyond)
			if h.Len() < k || d-tau < n.radius {
				visit(n.inside)
			}
		}
	}
	visit(t.root)
	if searchErr != nil {
		return nil, searchErr
	}
	out := make([]Result[T], h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(Result[T])
	}
	return out, nil
}

// Range returns every indexed item within distance r of query,
// in no particular order.
func (t *Tree[T]) Range(query T, r float64) []Result[T] {
	res, _ := t.RangeContext(context.Background(), query, r)
	return res
}

// RangeContext is Range with cancellation semantics matching KNNContext.
func (t *Tree[T]) RangeContext(ctx context.Context, query T, r float64) ([]Result[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []Result[T]
	evals := 0
	var searchErr error
	var visit func(n *node[T])
	visit = func(n *node[T]) {
		if n == nil || searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		if n.dead && n.inside == nil && n.beyond == nil {
			return
		}
		d, exact := t.eval(query, n, r)
		evals++
		if !exact {
			// d > radius + r: not a hit, and the inside ball cannot
			// reach back within r; only beyond can hold hits.
			visit(n.beyond)
			return
		}
		if d <= r && !n.dead {
			out = append(out, Result[T]{n.point, d})
		}
		if d-r < n.radius {
			visit(n.inside)
		}
		if d+r >= n.radius {
			visit(n.beyond)
		}
	}
	visit(t.root)
	if searchErr != nil {
		return nil, searchErr
	}
	return out, nil
}

func inf() float64 { return 1e308 }
