package vptree

import (
	"context"
	"sync/atomic"
)

// BKTree is a Burkhard–Keller tree: a metric index specialized to
// integer-valued metrics such as TED*/NED. Children of a node are keyed
// by their exact distance to the node, which gives cheap exact pruning
// via the triangle inequality: a child bucket at distance d can contain
// a hit within radius r of the query only if |d − D| <= r, where D is
// the query's distance to the node.
//
// BK-trees often beat VP-trees on small-range integer metrics because no
// floating-point radii or medians are involved; the ablation benchmark
// in internal/bench compares the two on NED workloads.
//
// Queries are safe for concurrent use once inserts stop: the statistics
// counter is atomic and searches never mutate the tree.
type BKTree[T any] struct {
	dist  func(a, b T) int
	root  *bkNode[T]
	count int

	distCalls atomic.Int64
}

type bkNode[T any] struct {
	point    T
	children map[int]*bkNode[T]
}

// NewBK builds a BK-tree by successive insertion. Insertion order is the
// slice order, making builds deterministic.
func NewBK[T any](items []T, dist func(a, b T) int) *BKTree[T] {
	t := &BKTree[T]{dist: dist}
	for _, it := range items {
		t.Insert(it)
	}
	return t
}

// Insert adds one item to the index. Insert is not safe to call
// concurrently with queries.
func (t *BKTree[T]) Insert(item T) {
	t.count++
	if t.root == nil {
		t.root = &bkNode[T]{point: item}
		return
	}
	cur := t.root
	for {
		d := t.dist(cur.point, item)
		if cur.children == nil {
			cur.children = make(map[int]*bkNode[T])
		}
		next, ok := cur.children[d]
		if !ok {
			cur.children[d] = &bkNode[T]{point: item}
			return
		}
		cur = next
	}
}

// Len returns the number of indexed items.
func (t *BKTree[T]) Len() int { return t.count }

// DistanceCalls returns metric evaluations since the last ResetStats
// (queries only; Insert calls are not counted).
func (t *BKTree[T]) DistanceCalls() int64 { return t.distCalls.Load() }

// ResetStats zeroes the metric-evaluation counter.
func (t *BKTree[T]) ResetStats() { t.distCalls.Store(0) }

// IntResult is a BK-tree search hit.
type IntResult[T any] struct {
	Item T
	Dist int
}

// Range returns all items within distance r of the query.
func (t *BKTree[T]) Range(query T, r int) []IntResult[T] {
	res, _ := t.RangeContext(context.Background(), query, r)
	return res
}

// RangeContext is Range with cancellation: the search checks ctx between
// batches of metric evaluations and returns ctx.Err() with a nil result
// if the context is done before the search completes.
func (t *BKTree[T]) RangeContext(ctx context.Context, query T, r int) ([]IntResult[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []IntResult[T]
	evals := 0
	var searchErr error
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		if searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		d := t.dist(query, n.point)
		evals++
		t.distCalls.Add(1)
		if d <= r {
			out = append(out, IntResult[T]{n.point, d})
		}
		for cd, child := range n.children {
			if cd >= d-r && cd <= d+r {
				visit(child)
			}
		}
	}
	if t.root != nil {
		visit(t.root)
	}
	if searchErr != nil {
		return nil, searchErr
	}
	return out, nil
}

// KNN returns the k nearest items in ascending distance order. Ties are
// broken by visit order; the distance multiset matches a linear scan.
func (t *BKTree[T]) KNN(query T, k int) []IntResult[T] {
	res, _ := t.KNNContext(context.Background(), query, k)
	return res
}

// KNNContext is KNN with cancellation semantics matching RangeContext.
func (t *BKTree[T]) KNNContext(ctx context.Context, query T, k int) ([]IntResult[T], error) {
	if k <= 0 || t.root == nil {
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Max-heap by distance, fixed capacity k (small k: slice is fine).
	var best []IntResult[T]
	worst := func() int {
		if len(best) < k {
			return int(^uint(0) >> 1)
		}
		return best[len(best)-1].Dist
	}
	add := func(r IntResult[T]) {
		best = append(best, r)
		for i := len(best) - 1; i > 0 && best[i].Dist < best[i-1].Dist; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	evals := 0
	var searchErr error
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		if searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		d := t.dist(query, n.point)
		evals++
		t.distCalls.Add(1)
		if len(best) < k || d < worst() {
			add(IntResult[T]{n.point, d})
		}
		for cd, child := range n.children {
			// Until k results exist there is no pruning radius; after
			// that the window is |cd - d| <= worst (triangle inequality).
			if len(best) < k {
				visit(child)
				continue
			}
			w := worst()
			if cd >= d-w && cd <= d+w {
				visit(child)
			}
		}
	}
	visit(t.root)
	if searchErr != nil {
		return nil, searchErr
	}
	return best, nil
}
