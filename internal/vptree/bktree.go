package vptree

import (
	"context"
	"math"
	"slices"
	"sync/atomic"
)

// BKTree is a Burkhard–Keller tree: a metric index specialized to
// integer-valued metrics such as TED*/NED. Children of a node are keyed
// by their exact distance to the node, which gives cheap exact pruning
// via the triangle inequality: a child bucket at distance d can contain
// a hit within radius r of the query only if |d − D| <= r, where D is
// the query's distance to the node.
//
// BK-trees often beat VP-trees on small-range integer metrics because no
// floating-point radii or medians are involved; the ablation benchmark
// in internal/bench compares the two on NED workloads.
//
// Queries are safe for concurrent use once inserts stop: the statistics
// counter is atomic and searches never mutate the tree.
type BKTree[T any] struct {
	dist  func(a, b T) int
	bdist func(a, b T, budget int) (int, bool) // optional; see SetBudgetedMetric
	less  func(a, b T) bool                    // optional; see SetTieBreak
	root  *bkNode[T]
	count int // indexed points, including tombstones
	dead  int // tombstoned points

	distCalls atomic.Int64
}

type bkNode[T any] struct {
	point    T
	children map[int]*bkNode[T]

	// maxKey is the largest child bucket key, maintained on Insert: once
	// the query's distance to point provably exceeds maxKey + w (w the
	// search ring radius), no child window can overlap and the exact
	// distance is irrelevant — the basis of the budgeted search.
	maxKey int

	// dead marks a tombstone: the node still routes searches through its
	// children (its bucket keys stay valid) but never ranks as a hit.
	dead bool
}

// SetBudgetedMetric installs a budget-aware metric variant returning
// either the exact distance (exact == true) or, when the distance
// provably exceeds budget, any lower bound on it (exact == false).
// Searches pass each node the largest distance that could still matter:
// maxKey + w, beyond which the node is not a hit and no child ring
// intersects the search window. Call before the first query; not safe
// concurrently with searches.
func (t *BKTree[T]) SetBudgetedMetric(b func(a, b T, budget int) (int, bool)) { t.bdist = b }

// SetTieBreak installs a strict total order resolving equal distances in
// KNN, making the result the k smallest (distance, less) pairs. Without
// it, ties at the kth distance resolve by visit order. Call before the
// first query; not safe concurrently with searches.
func (t *BKTree[T]) SetTieBreak(less func(a, b T) bool) { t.less = less }

// eval computes the query-to-node distance under the largest budget that
// could matter there given ring radius w.
func (t *BKTree[T]) eval(query T, n *bkNode[T], w int) (int, bool) {
	t.distCalls.Add(1)
	if t.bdist == nil || w == math.MaxInt {
		return t.dist(query, n.point), true
	}
	budget := w
	if n.children != nil {
		if w >= math.MaxInt-n.maxKey {
			return t.dist(query, n.point), true
		}
		if n.maxKey+w > budget {
			budget = n.maxKey + w
		}
	}
	return t.bdist(query, n.point, budget)
}

// NewBK builds a BK-tree by successive insertion. Insertion order is the
// slice order, making builds deterministic.
func NewBK[T any](items []T, dist func(a, b T) int) *BKTree[T] {
	t := &BKTree[T]{dist: dist}
	for _, it := range items {
		t.Insert(it)
	}
	return t
}

// Insert adds one item to the index. Insert is not safe to call
// concurrently with queries.
func (t *BKTree[T]) Insert(item T) {
	t.count++
	if t.root == nil {
		t.root = &bkNode[T]{point: item}
		return
	}
	cur := t.root
	for {
		d := t.dist(cur.point, item)
		if cur.children == nil {
			cur.children = make(map[int]*bkNode[T])
		}
		if d > cur.maxKey {
			cur.maxKey = d
		}
		next, ok := cur.children[d]
		if !ok {
			cur.children[d] = &bkNode[T]{point: item}
			return
		}
		cur = next
	}
}

// Len returns the number of live (non-tombstoned) indexed items.
func (t *BKTree[T]) Len() int { return t.count - t.dead }

// Deleted returns how many indexed items are tombstones.
func (t *BKTree[T]) Deleted() int { return t.dead }

// Delete tombstones every live indexed item for which match returns
// true and reports how many it marked. Tombstoned nodes keep routing
// searches through their children but never rank as hits. Delete walks
// the whole tree without metric evaluations. Not safe concurrently with
// queries or Insert.
func (t *BKTree[T]) Delete(match func(T) bool) int {
	marked := 0
	var walk func(n *bkNode[T])
	walk = func(n *bkNode[T]) {
		if !n.dead && match(n.point) {
			n.dead = true
			marked++
		}
		for _, child := range n.children {
			walk(child)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	t.dead += marked
	return marked
}

// Clone returns a structurally private copy of the tree sharing the
// item payloads: nodes, child maps, maxKey bounds, and tombstone flags
// are all duplicated, so Insert/Delete on the clone never touch the
// original and a published tree keeps serving lock-free readers. The
// caller supplies fresh metric closures — BK insertion evaluates the
// metric during its descent, and the owner's hooks typically reference
// the owning wrapper (counter sinks, maintenance muting), which the
// clone's owner must re-point at itself. Cloning performs no metric
// evaluations.
func (t *BKTree[T]) Clone(dist func(a, b T) int, bdist func(a, b T, budget int) (int, bool)) *BKTree[T] {
	c := &BKTree[T]{dist: dist, bdist: bdist, less: t.less, count: t.count, dead: t.dead}
	if t.root == nil {
		return c
	}
	// One slab holds every cloned node (child maps are still per-node);
	// t.count is exact — the tree allocates one node per Insert.
	slab := make([]bkNode[T], t.count)
	next := 0
	var copyNode func(n *bkNode[T]) *bkNode[T]
	copyNode = func(n *bkNode[T]) *bkNode[T] {
		nn := &slab[next]
		next++
		nn.point, nn.maxKey, nn.dead = n.point, n.maxKey, n.dead
		if n.children != nil {
			nn.children = make(map[int]*bkNode[T], len(n.children))
			for d, child := range n.children {
				nn.children[d] = copyNode(child)
			}
		}
		return nn
	}
	c.root = copyNode(t.root)
	return c
}

// DistanceCalls returns metric evaluations since the last ResetStats
// (queries only; Insert calls are not counted).
func (t *BKTree[T]) DistanceCalls() int64 { return t.distCalls.Load() }

// ResetStats zeroes the metric-evaluation counter.
func (t *BKTree[T]) ResetStats() { t.distCalls.Store(0) }

// IntResult is a BK-tree search hit.
type IntResult[T any] struct {
	Item T
	Dist int
}

// Range returns all items within distance r of the query.
func (t *BKTree[T]) Range(query T, r int) []IntResult[T] {
	res, _ := t.RangeContext(context.Background(), query, r)
	return res
}

// RangeContext is Range with cancellation: the search checks ctx between
// batches of metric evaluations and returns ctx.Err() with a nil result
// if the context is done before the search completes.
func (t *BKTree[T]) RangeContext(ctx context.Context, query T, r int) ([]IntResult[T], error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []IntResult[T]
	evals := 0
	var searchErr error
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		if searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		if n.dead && len(n.children) == 0 {
			// A tombstoned leaf routes nothing and ranks nowhere: skip
			// the metric evaluation entirely.
			return
		}
		d, exact := t.eval(query, n, r)
		evals++
		if !exact {
			// d > maxKey + r: not a hit, and no child ring [cd-r, cd+r]
			// can reach the query's distance.
			return
		}
		if d <= r && !n.dead {
			out = append(out, IntResult[T]{n.point, d})
		}
		for cd, child := range n.children {
			if cd >= d-r && cd <= d+r {
				visit(child)
			}
		}
	}
	if t.root != nil {
		visit(t.root)
	}
	if searchErr != nil {
		return nil, searchErr
	}
	return out, nil
}

// KNN returns the k nearest items in ascending distance order. Ties are
// broken by visit order; the distance multiset matches a linear scan.
func (t *BKTree[T]) KNN(query T, k int) []IntResult[T] {
	res, _ := t.KNNContext(context.Background(), query, k)
	return res
}

// KNNContext is KNN with cancellation semantics matching RangeContext.
//
// Child buckets are visited best-first: rings ordered by |key − d|, the
// triangle-inequality lower bound on what the ring can contain, so the
// buckets most likely to hold close neighbors are searched first and
// the kth-best window shrinks as early as possible — later rings are
// then skipped outright instead of searched. The result is unchanged
// (the window test is exact); only the work profile improves.
func (t *BKTree[T]) KNNContext(ctx context.Context, query T, k int) ([]IntResult[T], error) {
	if k <= 0 || t.root == nil {
		return nil, ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Sorted slice by (distance, tie-break), fixed capacity k (small k:
	// a slice beats a heap).
	var best []IntResult[T]
	worst := func() int {
		if len(best) < k {
			return math.MaxInt
		}
		return best[len(best)-1].Dist
	}
	before := func(a, b IntResult[T]) bool {
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		return t.less != nil && t.less(a.Item, b.Item)
	}
	add := func(r IntResult[T]) {
		best = append(best, r)
		for i := len(best) - 1; i > 0 && before(best[i], best[i-1]); i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	evals := 0
	var searchErr error
	// ringBuf is a shared arena for the per-node sorted ring keys:
	// each visit appends its keys, sorts its own suffix, and truncates
	// on exit, so recursion never clobbers a parent's ring and the
	// whole search reuses one backing array.
	var ringBuf []int
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		if searchErr != nil {
			return
		}
		if evals%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				searchErr = err
				return
			}
		}
		if n.dead && len(n.children) == 0 {
			return
		}
		d, exact := t.eval(query, n, worst())
		evals++
		if !exact {
			// d > maxKey + worst: the point cannot rank and no child
			// ring can overlap the current search window.
			return
		}
		if !n.dead && (len(best) < k || d < worst() ||
			(t.less != nil && d == worst() && t.less(n.point, best[len(best)-1].Item))) {
			add(IntResult[T]{n.point, d})
		}
		base := len(ringBuf)
		for cd := range n.children {
			ringBuf = append(ringBuf, cd)
		}
		ring := ringBuf[base:]
		slices.SortFunc(ring, func(a, b int) int {
			da, db := a-d, b-d
			if da < 0 {
				da = -da
			}
			if db < 0 {
				db = -db
			}
			if da != db {
				return da - db
			}
			return a - b
		})
		for _, cd := range ring {
			// Until k results exist there is no pruning radius; after
			// that the window is |cd - d| <= worst (triangle inequality).
			if len(best) >= k {
				w := worst()
				if cd < d-w || cd > d+w {
					continue
				}
			}
			visit(n.children[cd])
		}
		ringBuf = ringBuf[:base]
	}
	visit(t.root)
	if searchErr != nil {
		return nil, searchErr
	}
	return best, nil
}
