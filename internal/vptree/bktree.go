package vptree

// BKTree is a Burkhard–Keller tree: a metric index specialized to
// integer-valued metrics such as TED*/NED. Children of a node are keyed
// by their exact distance to the node, which gives cheap exact pruning
// via the triangle inequality: a child bucket at distance d can contain
// a hit within radius r of the query only if |d − D| <= r, where D is
// the query's distance to the node.
//
// BK-trees often beat VP-trees on small-range integer metrics because no
// floating-point radii or medians are involved; the ablation benchmark
// in internal/bench compares the two on NED workloads.
type BKTree[T any] struct {
	dist  func(a, b T) int
	root  *bkNode[T]
	count int

	distCalls int
}

type bkNode[T any] struct {
	point    T
	children map[int]*bkNode[T]
}

// NewBK builds a BK-tree by successive insertion. Insertion order is the
// slice order, making builds deterministic.
func NewBK[T any](items []T, dist func(a, b T) int) *BKTree[T] {
	t := &BKTree[T]{dist: dist}
	for _, it := range items {
		t.Insert(it)
	}
	return t
}

// Insert adds one item to the index.
func (t *BKTree[T]) Insert(item T) {
	t.count++
	if t.root == nil {
		t.root = &bkNode[T]{point: item}
		return
	}
	cur := t.root
	for {
		d := t.dist(cur.point, item)
		if cur.children == nil {
			cur.children = make(map[int]*bkNode[T])
		}
		next, ok := cur.children[d]
		if !ok {
			cur.children[d] = &bkNode[T]{point: item}
			return
		}
		cur = next
	}
}

// Len returns the number of indexed items.
func (t *BKTree[T]) Len() int { return t.count }

// DistanceCalls returns metric evaluations since the last ResetStats
// (queries only; Insert calls are not counted).
func (t *BKTree[T]) DistanceCalls() int { return t.distCalls }

// ResetStats zeroes the metric-evaluation counter.
func (t *BKTree[T]) ResetStats() { t.distCalls = 0 }

// IntResult is a BK-tree search hit.
type IntResult[T any] struct {
	Item T
	Dist int
}

// Range returns all items within distance r of the query.
func (t *BKTree[T]) Range(query T, r int) []IntResult[T] {
	var out []IntResult[T]
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		d := t.dist(query, n.point)
		t.distCalls++
		if d <= r {
			out = append(out, IntResult[T]{n.point, d})
		}
		for cd, child := range n.children {
			if cd >= d-r && cd <= d+r {
				visit(child)
			}
		}
	}
	if t.root != nil {
		visit(t.root)
	}
	return out
}

// KNN returns the k nearest items in ascending distance order. Ties are
// broken by visit order; the distance multiset matches a linear scan.
func (t *BKTree[T]) KNN(query T, k int) []IntResult[T] {
	if k <= 0 || t.root == nil {
		return nil
	}
	// Max-heap by distance, fixed capacity k (small k: slice is fine).
	var best []IntResult[T]
	worst := func() int {
		if len(best) < k {
			return int(^uint(0) >> 1)
		}
		return best[len(best)-1].Dist
	}
	add := func(r IntResult[T]) {
		best = append(best, r)
		for i := len(best) - 1; i > 0 && best[i].Dist < best[i-1].Dist; i-- {
			best[i], best[i-1] = best[i-1], best[i]
		}
		if len(best) > k {
			best = best[:k]
		}
	}
	var visit func(n *bkNode[T])
	visit = func(n *bkNode[T]) {
		d := t.dist(query, n.point)
		t.distCalls++
		if len(best) < k || d < worst() {
			add(IntResult[T]{n.point, d})
		}
		for cd, child := range n.children {
			// Until k results exist there is no pruning radius; after
			// that the window is |cd - d| <= worst (triangle inequality).
			if len(best) < k {
				visit(child)
				continue
			}
			w := worst()
			if cd >= d-w && cd <= d+w {
				visit(child)
			}
		}
	}
	visit(t.root)
	return best
}
