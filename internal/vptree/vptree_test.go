package vptree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// point is a 2-D vector with L1 distance — an exact metric, so VP-tree
// results must match a linear scan bit-for-bit.
type point struct{ x, y float64 }

func l1(a, b point) float64 {
	return math.Abs(a.x-b.x) + math.Abs(a.y-b.y)
}

func randomPoints(rng *rand.Rand, n int) []point {
	pts := make([]point, n)
	for i := range pts {
		pts[i] = point{rng.Float64() * 100, rng.Float64() * 100}
	}
	return pts
}

func scanKNN(pts []point, q point, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = l1(q, p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(300))
		tr := New(pts, l1)
		for q := 0; q < 10; q++ {
			query := point{rng.Float64() * 100, rng.Float64() * 100}
			k := 1 + rng.Intn(10)
			got := tr.KNN(query, k)
			want := scanKNN(pts, query, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i]) > 1e-9 {
					t.Fatalf("trial %d: result %d dist %v, want %v", trial, i, got[i].Dist, want[i])
				}
			}
			// Ascending order.
			for i := 1; i < len(got); i++ {
				if got[i].Dist < got[i-1].Dist {
					t.Fatal("KNN results not sorted")
				}
			}
		}
	}
}

func TestRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(rng, 400)
	tr := New(pts, l1)
	for trial := 0; trial < 20; trial++ {
		query := point{rng.Float64() * 100, rng.Float64() * 100}
		r := rng.Float64() * 30
		got := tr.Range(query, r)
		want := 0
		for _, p := range pts {
			if l1(query, p) <= r {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: range returned %d, scan found %d", trial, len(got), want)
		}
		for _, res := range got {
			if res.Dist > r {
				t.Fatalf("range result at distance %v > radius %v", res.Dist, r)
			}
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	empty := New(nil, l1)
	if res := empty.KNN(point{}, 3); res != nil {
		t.Error("empty tree KNN should be nil")
	}
	if res := empty.Range(point{}, 5); res != nil {
		t.Error("empty tree Range should be nil")
	}
	one := New([]point{{1, 1}}, l1)
	res := one.KNN(point{0, 0}, 5)
	if len(res) != 1 || res[0].Dist != 2 {
		t.Errorf("single-point KNN = %+v", res)
	}
	if one.Len() != 1 {
		t.Errorf("Len = %d", one.Len())
	}
}

func TestKNNZeroK(t *testing.T) {
	tr := New([]point{{1, 2}}, l1)
	if res := tr.KNN(point{}, 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := []point{{5, 5}, {5, 5}, {5, 5}, {1, 1}}
	tr := New(pts, l1)
	res := tr.KNN(point{5, 5}, 3)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 0; i < 3; i++ {
		if res[i].Dist != 0 {
			t.Errorf("duplicate point at distance %v", res[i].Dist)
		}
	}
}

func TestDistanceCallsSavedVsScan(t *testing.T) {
	// With a well-behaved metric, the VP-tree should evaluate far fewer
	// distances than a scan on clustered data.
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 2000)
	tr := New(pts, l1)
	tr.ResetStats()
	queries := 50
	for q := 0; q < queries; q++ {
		tr.KNN(point{rng.Float64() * 100, rng.Float64() * 100}, 1)
	}
	perQuery := tr.DistanceCalls() / int64(queries)
	if perQuery >= int64(len(pts)) {
		t.Errorf("VP-tree evaluated %d distances/query, no better than a %d-point scan",
			perQuery, len(pts))
	}
}

func TestDeterministicBuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 100)
		t1 := New(pts, l1)
		t2 := New(pts, l1)
		q := point{50, 50}
		a := t1.KNN(q, 5)
		b := t2.KNN(q, 5)
		for i := range a {
			if a[i].Dist != b[i].Dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerMetric(t *testing.T) {
	// Integer-valued metrics (like TED*) must work unchanged.
	ints := []int{0, 3, 7, 12, 40, 41, 42}
	tr := New(ints, func(a, b int) float64 {
		d := a - b
		if d < 0 {
			d = -d
		}
		return float64(d)
	})
	res := tr.KNN(40, 3)
	if res[0].Item != 40 || res[0].Dist != 0 {
		t.Errorf("nearest to 40 = %+v", res[0])
	}
	if res[1].Dist != 1 || res[2].Dist != 2 {
		t.Errorf("next nearest distances = %v, %v", res[1].Dist, res[2].Dist)
	}
}

func TestExportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, rng.Intn(400))
		tr := New(pts, l1)
		if trial%3 == 1 && len(pts) > 10 {
			// Tombstones must survive the round-trip: dead nodes keep
			// routing searches without ever appearing as hits.
			doomed := pts[rng.Intn(len(pts))]
			tr.Delete(func(p point) bool { return p == doomed })
		}
		dump := tr.Export()
		if len(dump) != len(pts) {
			t.Fatalf("trial %d: export has %d nodes, tree has %d", trial, len(dump), len(pts))
		}
		tr2, err := NewFromExport(dump, l1)
		if err != nil {
			t.Fatalf("trial %d: NewFromExport: %v", trial, err)
		}
		if tr2.Len() != tr.Len() || tr2.Deleted() != tr.Deleted() {
			t.Fatalf("trial %d: restored Len=%d Deleted=%d, want %d/%d",
				trial, tr2.Len(), tr2.Deleted(), tr.Len(), tr.Deleted())
		}
		for q := 0; q < 10; q++ {
			query := point{rng.Float64() * 100, rng.Float64() * 100}
			k := 1 + rng.Intn(8)
			got, want := tr2.KNN(query, k), tr.KNN(query, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: restored KNN returned %d results, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Item != want[i].Item || got[i].Dist != want[i].Dist {
					t.Fatalf("trial %d: restored KNN[%d] = %+v, want %+v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestExportDeterministic(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(3)), 200)
	tr := New(pts, l1)
	a, b := tr.Export(), tr.Export()
	if len(a) != len(b) {
		t.Fatal("exports differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("export node %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Export → restore → export must be a fixed point.
	tr2, err := NewFromExport(a, l1)
	if err != nil {
		t.Fatal(err)
	}
	c := tr2.Export()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("re-export node %d differs: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestNewFromExportRejectsBadDumps(t *testing.T) {
	pts := randomPoints(rand.New(rand.NewSource(9)), 50)
	dump := New(pts, l1).Export()

	truncated := dump[:len(dump)-1]
	if _, err := NewFromExport(truncated, l1); err == nil {
		t.Error("truncated dump accepted")
	}

	trailing := append(append([]ExportNode[point]{}, dump...), ExportNode[point]{})
	if _, err := NewFromExport(trailing, l1); err == nil {
		t.Error("dump with trailing node accepted")
	}

	for _, bad := range []float64{-1, math.NaN(), math.Inf(1)} {
		mut := append([]ExportNode[point]{}, dump...)
		mut[3].Radius = bad
		if _, err := NewFromExport(mut, l1); err == nil {
			t.Errorf("dump with radius %v accepted", bad)
		}
	}

	empty, err := NewFromExport(nil, l1)
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty dump: tree len %d, err %v", empty.Len(), err)
	}
}
