// Package faultfs is the filesystem seam under every writer of durable
// state in this repo. Production code never calls os.OpenFile, Rename,
// or friends directly on the durability path — it goes through the FS
// interface, whose default implementation is a thin veneer over the os
// package. Tests (and only tests) Install an Injector that scripts
// failures — EIO, ENOSPC, short writes, sync failures, torn renames,
// hard crash-points — by operation kind, path pattern, or global call
// index, which is what lets the chaos harness provoke every I/O
// failure path deterministically instead of hoping a real disk
// misbehaves on cue.
//
// The seam is process-global (Default/Install) rather than threaded
// through every constructor: durable directories are unique per test,
// and an Injector only intervenes on paths under its Root, passing
// everything else to the real filesystem — so installing one cannot
// perturb unrelated I/O, only observe-and-fault its own directory.
package faultfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
)

// File is the open-file surface the durability layer needs: sequential
// reads and writes, fsync, truncation. All implementations must be
// safe for the single-owner use the WAL and segment writers make of
// them (no concurrent method calls on one File).
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync forces written data to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat reports file metadata.
	Stat() (os.FileInfo, error)
	// Name is the path the file was opened with.
	Name() string
}

// FS is the filesystem operation set of the durable stack: everything
// internal/fsx, internal/segment, and the corpus durable layer touch.
type FS interface {
	// OpenFile opens path with os.OpenFile semantics.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the directory at path.
	ReadDir(path string) ([]os.DirEntry, error)
	// Stat reports metadata for path.
	Stat(path string) (os.FileInfo, error)
	// Rename renames oldpath to newpath (atomically, on POSIX).
	Rename(oldpath, newpath string) error
	// Remove unlinks path.
	Remove(path string) error
	// MkdirAll creates path and missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs the directory at dir, making renames and
	// creations in it durable. Filesystems without directory fsync
	// (EINVAL/ENOTSUP) are tolerated — they offer nothing stronger.
	SyncDir(dir string) error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
func (osFS) Open(path string) (File, error)             { return os.Open(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (osFS) Stat(path string) (os.FileInfo, error)      { return os.Stat(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// current is the process-default FS: the one every durability-path
// caller resolves through Default. nil means the real filesystem.
var current atomic.Pointer[FS]

// Default returns the installed FS, or the real filesystem when none
// is installed.
func Default() FS {
	if p := current.Load(); p != nil {
		return *p
	}
	return osFS{}
}

// Install makes fs the process default and returns a restore function
// reinstating the previous default. Tests installing an Injector must
// not run in parallel with other tests that install one; scoping the
// Injector's Root to a per-test directory keeps everything else
// unaffected either way.
func Install(fs FS) (restore func()) {
	prev := current.Swap(&fs)
	return func() { current.Store(prev) }
}

// base returns the path's final element, the unit path patterns match
// against.
func base(path string) string { return filepath.Base(path) }
