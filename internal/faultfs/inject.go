package faultfs

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// Op names a filesystem operation class for rule matching.
type Op int

const (
	// OpAny matches every operation.
	OpAny Op = iota
	// OpOpen covers OpenFile and Open.
	OpOpen
	// OpWrite covers File.Write.
	OpWrite
	// OpSync covers File.Sync.
	OpSync
	// OpTruncate covers File.Truncate.
	OpTruncate
	// OpRename covers FS.Rename (matched against the destination).
	OpRename
	// OpRemove covers FS.Remove.
	OpRemove
	// OpSyncDir covers FS.SyncDir.
	OpSyncDir
	// OpRead covers File.Read and FS.ReadFile.
	OpRead
)

func (op Op) String() string {
	switch op {
	case OpAny:
		return "any"
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	case OpRead:
		return "read"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Fault is what a matched rule does to the operation.
type Fault int

const (
	// FaultErr fails the operation with Rule.Err without performing it.
	FaultErr Fault = iota
	// FaultShortWrite writes roughly half the buffer to the real file,
	// then fails with Rule.Err — the canonical torn-append producer.
	// Only meaningful on OpWrite; other ops treat it as FaultErr.
	FaultShortWrite
	// FaultTornRename truncates the source file to a prefix and then
	// performs the rename successfully — modelling a crash-torn rename
	// target discovered on the next boot. Only meaningful on OpRename.
	FaultTornRename
	// FaultCrash kills the process with SIGKILL before performing the
	// operation. Used by the subprocess crash-point matrix.
	FaultCrash
	// FaultCrashTorn (OpWrite only) writes roughly half the buffer and
	// then SIGKILLs — a torn append with no error path at all.
	FaultCrashTorn
)

// Rule scripts one fault. Zero-value fields widen the match: Op OpAny
// matches every operation class, empty Path matches every path under
// the injector root, Nth 0 fires on every matching call.
type Rule struct {
	// Op restricts the rule to one operation class.
	Op Op
	// Path, when non-empty, must be a substring of the operation's
	// path (renames match the destination).
	Path string
	// Nth fires only on the nth matching call (1-based). 0 fires on
	// every match.
	Nth int64
	// At, when > 0, ignores Op/Path/Nth and fires when the injector's
	// global operation counter (ops under Root, in order) reaches this
	// 1-based index. This is the sweep hook: enumerate a scenario's
	// ops once, then fail each index in turn.
	At int64
	// Fault selects the failure behaviour.
	Fault Fault
	// Err is the error returned for FaultErr/FaultShortWrite; nil
	// defaults to EIO.
	Err error

	seen int64 // matching calls observed (under mu)
}

// Injector is an FS that delegates to an inner FS but consults a rule
// script on every operation whose path lives under Root. It is safe
// for concurrent use.
type Injector struct {
	inner FS
	root  string

	mu    sync.Mutex
	rules []*Rule
	ops   int64 // global op counter, paths under root only
	trips []string
}

// NewInjector wraps the real filesystem, intervening only on paths
// under root (a directory; matched by prefix).
func NewInjector(root string) *Injector {
	return &Injector{inner: osFS{}, root: root}
}

// AddRule appends a rule to the script. Rules are consulted in order;
// the first that fires wins for a given operation.
func (in *Injector) AddRule(r Rule) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &r)
	return in
}

// Reset clears all rules and the fired-fault log but keeps the global
// op counter running.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.trips = nil
}

// Ops reports how many operations under Root have been observed —
// run a scenario once fault-free, read Ops, then sweep At=1..Ops.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Trips returns a description of each fault fired so far, in order.
func (in *Injector) Trips() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.trips...)
}

// Install installs the injector as the process-default FS and returns
// the restore function.
func (in *Injector) Install() (restore func()) { return Install(in) }

func (in *Injector) scoped(path string) bool {
	return strings.HasPrefix(path, in.root)
}

// check runs the rule script for one operation. It returns the fault
// to apply (nil when the operation should proceed untouched).
func (in *Injector) check(op Op, path string) *Rule {
	if !in.scoped(path) {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops++
	for _, r := range in.rules {
		if r.At > 0 {
			if in.ops != r.At {
				continue
			}
		} else {
			if r.Op != OpAny && r.Op != op {
				continue
			}
			if r.Path != "" && !strings.Contains(path, r.Path) {
				continue
			}
			r.seen++
			if r.Nth > 0 && r.seen != r.Nth {
				continue
			}
		}
		in.trips = append(in.trips,
			fmt.Sprintf("op=%v path=%s at=%d fault=%d", op, base(path), in.ops, r.Fault))
		return r
	}
	return nil
}

func (r *Rule) err() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// crash kills this process without running deferred functions or
// flushing anything — the harshest stop available.
func crash() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL cannot be caught
}

// apply executes a fired rule for a non-write operation: either fail
// or crash. Returns the error to surface (nil means proceed).
func (r *Rule) apply() (proceed bool, err error) {
	switch r.Fault {
	case FaultCrash, FaultCrashTorn:
		crash()
		return false, nil
	case FaultTornRename:
		return true, nil // handled by Rename itself
	default:
		return false, r.err()
	}
}

// --- FS implementation ---

// OpenFile consults the script, then opens through the inner FS,
// wrapping the handle so per-file operations stay scripted.
func (in *Injector) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if r := in.check(OpOpen, path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return nil, err
		}
	}
	f, err := in.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, path: path, in: in}, nil
}

// Open is OpenFile read-only.
func (in *Injector) Open(path string) (File, error) {
	return in.OpenFile(path, os.O_RDONLY, 0)
}

// ReadFile consults the script, then reads through the inner FS.
func (in *Injector) ReadFile(path string) ([]byte, error) {
	if r := in.check(OpRead, path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return nil, err
		}
	}
	return in.inner.ReadFile(path)
}

// ReadDir delegates to the inner FS (listing is not a fault target).
func (in *Injector) ReadDir(path string) ([]os.DirEntry, error) {
	return in.inner.ReadDir(path)
}

// Stat delegates to the inner FS.
func (in *Injector) Stat(path string) (os.FileInfo, error) {
	return in.inner.Stat(path)
}

// Rename consults the script (matching the destination) and can tear
// the source before renaming.
func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.check(OpRename, newpath); r != nil {
		switch r.Fault {
		case FaultCrash, FaultCrashTorn:
			crash()
		case FaultTornRename:
			if fi, err := in.inner.Stat(oldpath); err == nil && fi.Size() > 0 {
				if f, err := in.inner.OpenFile(oldpath, os.O_WRONLY, 0); err == nil {
					_ = f.Truncate(fi.Size() / 3)
					_ = f.Sync()
					_ = f.Close()
				}
			}
		default:
			return r.err()
		}
	}
	return in.inner.Rename(oldpath, newpath)
}

// Remove consults the script, then removes through the inner FS.
func (in *Injector) Remove(path string) error {
	if r := in.check(OpRemove, path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return err
		}
	}
	return in.inner.Remove(path)
}

// MkdirAll delegates to the inner FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}

// SyncDir consults the script, then syncs through the inner FS.
func (in *Injector) SyncDir(dir string) error {
	if r := in.check(OpSyncDir, dir); r != nil {
		if proceed, err := r.apply(); !proceed {
			return err
		}
	}
	return in.inner.SyncDir(dir)
}

// injFile routes per-handle operations back through the script.
type injFile struct {
	f    File
	path string
	in   *Injector
}

func (f *injFile) Read(p []byte) (int, error) {
	if r := f.in.check(OpRead, f.path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return 0, err
		}
	}
	return f.f.Read(p)
}

func (f *injFile) Write(p []byte) (int, error) {
	if r := f.in.check(OpWrite, f.path); r != nil {
		switch r.Fault {
		case FaultCrash:
			crash()
		case FaultCrashTorn:
			if len(p) > 1 {
				_, _ = f.f.Write(p[:len(p)/2])
				_ = f.f.Sync()
			}
			crash()
		case FaultShortWrite:
			n := 0
			if len(p) > 1 {
				n, _ = f.f.Write(p[:len(p)/2])
			}
			return n, r.err()
		default:
			return 0, r.err()
		}
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if r := f.in.check(OpSync, f.path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return err
		}
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if r := f.in.check(OpTruncate, f.path); r != nil {
		if proceed, err := r.apply(); !proceed {
			return err
		}
	}
	return f.f.Truncate(size)
}

func (f *injFile) Close() error               { return f.f.Close() }
func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
func (f *injFile) Name() string               { return f.path }
