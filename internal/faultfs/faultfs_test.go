package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// write creates path with content through the default FS.
func write(t *testing.T, path, content string) {
	t.Helper()
	f, err := Default().OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(content)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestInstallRestore(t *testing.T) {
	before := Default()
	inj := NewInjector(t.TempDir())
	restore := inj.Install()
	if Default() != FS(inj) {
		t.Fatal("Install did not take effect")
	}
	restore()
	if Default() != before {
		t.Fatal("restore did not reinstate the previous FS")
	}
}

// Out-of-root paths must pass through untouched and uncounted even
// under an every-op failure rule.
func TestInjectorScopedToRoot(t *testing.T) {
	root := t.TempDir()
	outside := t.TempDir()
	inj := NewInjector(root).AddRule(Rule{Op: OpAny, Fault: FaultErr})
	defer inj.Install()()

	write(t, filepath.Join(outside, "ok.txt"), "fine")
	if inj.Ops() != 0 {
		t.Fatalf("out-of-root ops counted: %d", inj.Ops())
	}
	if _, err := Default().OpenFile(filepath.Join(root, "x"), os.O_WRONLY|os.O_CREATE, 0o644); err == nil {
		t.Fatal("in-root open survived an every-op failure rule")
	}
}

func TestRuleOpPathNthMatching(t *testing.T) {
	root := t.TempDir()
	boom := errors.New("scripted")
	inj := NewInjector(root).AddRule(Rule{Op: OpWrite, Path: "wal-", Nth: 2, Fault: FaultErr, Err: boom})
	defer inj.Install()()

	// Writes to a non-matching path never trip.
	write(t, filepath.Join(root, "other.dat"), "abc")

	f, err := Default().OpenFile(filepath.Join(root, "wal-00000001.log"), os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("first")); err != nil {
		t.Fatalf("first matching write should pass: %v", err)
	}
	if _, err := f.Write([]byte("second")); !errors.Is(err, boom) {
		t.Fatalf("second matching write: err = %v, want %v", err, boom)
	}
	if _, err := f.Write([]byte("third")); err != nil {
		t.Fatalf("post-Nth write should pass: %v", err)
	}
	if trips := inj.Trips(); len(trips) != 1 {
		t.Fatalf("trips = %v, want exactly one", trips)
	}
}

// The At sweep hook fires on the global op index regardless of class.
func TestRuleAtGlobalIndex(t *testing.T) {
	root := t.TempDir()

	// Dry run: count the ops the scenario performs.
	inj := NewInjector(root)
	restore := inj.Install()
	write(t, filepath.Join(root, "a"), "1") // open + write
	write(t, filepath.Join(root, "b"), "2") // open + write
	restore()
	total := inj.Ops()
	if total != 4 {
		t.Fatalf("dry run counted %d ops, want 4", total)
	}

	// Replay failing exactly op 3 (second file's open).
	inj2 := NewInjector(root).AddRule(Rule{At: 3, Fault: FaultErr})
	restore2 := inj2.Install()
	defer restore2()
	write(t, filepath.Join(root, "a"), "1")
	if _, err := Default().OpenFile(filepath.Join(root, "b"), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644); err == nil {
		t.Fatal("op 3 did not fail")
	}
}

func TestShortWriteLeavesPrefix(t *testing.T) {
	root := t.TempDir()
	inj := NewInjector(root).AddRule(Rule{Op: OpWrite, Fault: FaultShortWrite, Err: syscall.ENOSPC})
	defer inj.Install()()

	path := filepath.Join(root, "torn.dat")
	f, err := Default().OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write reported %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "01234" {
		t.Fatalf("on-disk prefix = %q, want %q", got, "01234")
	}
}

func TestTornRenameTruncatesSource(t *testing.T) {
	root := t.TempDir()
	inj := NewInjector(root).AddRule(Rule{Op: OpRename, Fault: FaultTornRename})
	defer inj.Install()()

	src := filepath.Join(root, "seg.tmp")
	dst := filepath.Join(root, "seg.nedseg")
	write(t, src, "abcdefghijklmnopqr") // 18 bytes -> torn to 6
	if err := Default().Rename(src, dst); err != nil {
		t.Fatalf("torn rename should still succeed: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("torn rename target holds %d bytes, want 6", len(got))
	}
}

// FaultErr on sync, truncate, remove, and syncdir paths.
func TestFaultErrPerOpClass(t *testing.T) {
	root := t.TempDir()
	boom := errors.New("scripted")
	inj := NewInjector(root).
		AddRule(Rule{Op: OpSync, Fault: FaultErr, Err: boom}).
		AddRule(Rule{Op: OpTruncate, Fault: FaultErr, Err: boom}).
		AddRule(Rule{Op: OpRemove, Fault: FaultErr, Err: boom}).
		AddRule(Rule{Op: OpSyncDir, Fault: FaultErr, Err: boom})
	defer inj.Install()()

	path := filepath.Join(root, "f.dat")
	f, err := Default().OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); !errors.Is(err, boom) {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Truncate(0); !errors.Is(err, boom) {
		t.Fatalf("truncate: %v", err)
	}
	if err := Default().Remove(path); !errors.Is(err, boom) {
		t.Fatalf("remove: %v", err)
	}
	if err := Default().SyncDir(root); !errors.Is(err, boom) {
		t.Fatalf("syncdir: %v", err)
	}
}

// Reset clears the script mid-flight so recovery paths run clean.
func TestReset(t *testing.T) {
	root := t.TempDir()
	inj := NewInjector(root).AddRule(Rule{Op: OpAny, Fault: FaultErr})
	defer inj.Install()()
	if _, err := Default().OpenFile(filepath.Join(root, "x"), os.O_WRONLY|os.O_CREATE, 0o644); err == nil {
		t.Fatal("rule did not fire")
	}
	inj.Reset()
	write(t, filepath.Join(root, "x"), "now fine")
}

// The default error for a rule with no Err is EIO.
func TestDefaultErrIsEIO(t *testing.T) {
	root := t.TempDir()
	inj := NewInjector(root).AddRule(Rule{Op: OpOpen, Fault: FaultErr})
	defer inj.Install()()
	_, err := Default().Open(filepath.Join(root, "x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("err = %v, want EIO", err)
	}
}

// The plain OS filesystem must behave like the os package (smoke).
func TestOSFS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	fs := OS()
	f, err := fs.OpenFile(path, os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fs.ReadFile(path)
	if err != nil || string(b) != "hi" {
		t.Fatalf("ReadFile: %q, %v", b, err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat(path + ".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %d entries, %v", len(ents), err)
	}
	if err := fs.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}
