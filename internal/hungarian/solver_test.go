package hungarian

import (
	"math/rand"
	"testing"
)

func randomFlat(rng *rand.Rand, n, maxCost int) []int64 {
	cost := make([]int64, n*n)
	for i := range cost {
		cost[i] = int64(rng.Intn(maxCost))
	}
	return cost
}

// TestSolverMatchesSolveFlat: the reusable-workspace Solver must be
// bit-identical to the one-shot SolveFlat — total AND assignment — even
// when the same Solver is recycled across many differently-sized
// problems.
func TestSolverMatchesSolveFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var s Solver
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(24)
		cost := randomFlat(rng, n, 12)
		wantTotal, wantAssign := SolveFlat(cost, n)
		gotTotal, gotAssign := s.Solve(cost, n)
		if gotTotal != wantTotal {
			t.Fatalf("trial %d n=%d: Solver total %d, SolveFlat %d", trial, n, gotTotal, wantTotal)
		}
		for i := range wantAssign {
			if gotAssign[i] != wantAssign[i] {
				t.Fatalf("trial %d n=%d row %d: Solver col %d, SolveFlat %d",
					trial, n, i, gotAssign[i], wantAssign[i])
			}
		}
	}
}

func TestSolverEmpty(t *testing.T) {
	var s Solver
	total, assign := s.Solve(nil, 0)
	if total != 0 || assign != nil {
		t.Fatalf("empty solve gave (%d, %v)", total, assign)
	}
}

// TestSolveAtMostContract: for every budget, either the solver completes
// with the exact optimum, or it aborts with a partial cost that is (a)
// strictly above the budget and (b) never above the true optimum — so an
// abort proves the optimum exceeds the budget.
func TestSolveAtMostContract(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var s Solver
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(16)
		cost := randomFlat(rng, n, 9)
		want, wantAssign := SolveFlat(cost, n)
		for budget := int64(0); budget <= want+2; budget++ {
			got, assign, complete := s.SolveAtMost(cost, n, budget)
			if complete {
				if got != want {
					t.Fatalf("trial %d budget %d: completed with %d, optimum %d", trial, budget, got, want)
				}
				for i := range wantAssign {
					if assign[i] != wantAssign[i] {
						t.Fatalf("trial %d budget %d: assignment differs at row %d", trial, budget, i)
					}
				}
				continue
			}
			if got <= budget {
				t.Fatalf("trial %d budget %d: aborted with partial %d <= budget", trial, budget, got)
			}
			if got > want {
				t.Fatalf("trial %d budget %d: partial %d exceeds optimum %d", trial, budget, got, want)
			}
			if want <= budget {
				t.Fatalf("trial %d budget %d: aborted although optimum %d fits", trial, budget, want)
			}
		}
		// At the optimum itself the solve must complete.
		if _, _, complete := s.SolveAtMost(cost, n, want); !complete {
			t.Fatalf("trial %d: budget == optimum still aborted", trial)
		}
	}
}

// TestSolveAtMostActuallyAborts confirms the early exit fires on a
// matrix whose optimum is far above a small budget.
func TestSolveAtMostActuallyAborts(t *testing.T) {
	const n = 32
	cost := make([]int64, n*n)
	for i := range cost {
		cost[i] = 100
	}
	var s Solver
	partial, _, complete := s.SolveAtMost(cost, n, 150)
	if complete {
		t.Fatal("expected an abort: optimum is 3200, budget 150")
	}
	if partial <= 150 {
		t.Fatalf("partial %d not above the budget", partial)
	}
}

func BenchmarkSolverReused64(b *testing.B) {
	rng := rand.New(rand.NewSource(33))
	cost := randomFlat(rng, 64, 50)
	var s Solver
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Solve(cost, 64)
	}
}
