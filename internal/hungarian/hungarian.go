// Package hungarian solves the assignment problem (minimum-cost perfect
// matching in a complete weighted bipartite graph) in O(n³) time using
// the shortest-augmenting-path formulation of the Hungarian algorithm
// with dual potentials (Jonker–Volgenant style).
//
// TED* (§5.5 of the NED paper) solves one such matching per tree level;
// this package is its hot path.
package hungarian

import "math"

// Inf is the sentinel used internally for "no edge"; costs supplied by
// callers must be finite and small enough that row sums do not overflow.
const Inf = math.MaxInt64 / 4

// Solve computes a minimum-cost perfect matching of the n×n cost matrix
// cost (cost[i][j] = weight of assigning row i to column j). It returns
// the total cost and the assignment vector rowToCol where rowToCol[i] is
// the column matched to row i. Costs must be non-negative. An empty
// matrix yields (0, nil).
//
// The matrix must be square; TED* always pads levels to equal size before
// matching (§5.2), so the square case is the only one it needs. Rectangular
// callers can pad with zero rows/columns via SolveRect.
func Solve(cost [][]int64) (total int64, rowToCol []int) {
	n := len(cost)
	if n == 0 {
		return 0, nil
	}
	// Potentials u (rows) and v (columns), 1-indexed internally with a
	// virtual row/column 0 as in the classic formulation.
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1) // p[j] = row matched to column j (0 = free)
	way := make([]int, n+1)

	minv := make([]int64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = Inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			var delta int64 = Inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		rowToCol[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowToCol[i]]
	}
	return total, rowToCol
}

// SolveRect handles rectangular matrices by padding the smaller dimension
// with zero-cost dummy rows or columns. Rows matched to dummy columns
// (and vice versa) appear as -1 in the returned assignments.
func SolveRect(cost [][]int64) (total int64, rowToCol []int) {
	rows := len(cost)
	if rows == 0 {
		return 0, nil
	}
	cols := len(cost[0])
	n := rows
	if cols > n {
		n = cols
	}
	sq := make([][]int64, n)
	for i := range sq {
		sq[i] = make([]int64, n)
		if i < rows {
			copy(sq[i], cost[i])
		}
	}
	t, assign := Solve(sq)
	rowToCol = make([]int, rows)
	for i := 0; i < rows; i++ {
		if assign[i] < cols {
			rowToCol[i] = assign[i]
		} else {
			rowToCol[i] = -1
		}
	}
	return t, rowToCol
}

// SolveFlat is Solve for a row-major flattened n×n matrix; it avoids the
// per-row slice headers on hot paths. Semantics match Solve.
func SolveFlat(cost []int64, n int) (total int64, rowToCol []int) {
	if n == 0 {
		return 0, nil
	}
	u := make([]int64, n+1)
	v := make([]int64, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	minv := make([]int64, n+1)
	used := make([]bool, n+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = Inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			base := (i0 - 1) * n
			var delta int64 = Inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[base+j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		rowToCol[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		total += cost[i*n+rowToCol[i]]
	}
	return total, rowToCol
}

// Greedy computes a (suboptimal) matching by repeatedly taking each row's
// cheapest unused column. It exists only as an ablation baseline showing
// why TED* needs an optimal matcher; its result can exceed the optimum.
func Greedy(cost [][]int64) (total int64, rowToCol []int) {
	n := len(cost)
	rowToCol = make([]int, n)
	usedCol := make([]bool, n)
	for i := 0; i < n; i++ {
		best := -1
		for j := 0; j < n; j++ {
			if usedCol[j] {
				continue
			}
			if best == -1 || cost[i][j] < cost[i][best] {
				best = j
			}
		}
		rowToCol[i] = best
		usedCol[best] = true
		total += cost[i][best]
	}
	return total, rowToCol
}
