// Package hungarian solves the assignment problem (minimum-cost perfect
// matching in a complete weighted bipartite graph) in O(n³) time using
// the shortest-augmenting-path formulation of the Hungarian algorithm
// with dual potentials (Jonker–Volgenant style).
//
// TED* (§5.5 of the NED paper) solves one such matching per tree level;
// this package is its hot path.
package hungarian

import "math"

// Inf is the sentinel used internally for "no edge"; costs supplied by
// callers must be finite and small enough that row sums do not overflow.
const Inf = math.MaxInt64 / 4

// Solver is a reusable workspace for the flat row-major assignment
// problem. All buffers are preallocated and grown geometrically, so a
// Solver amortizes to zero allocations across calls — the property the
// TED* hot path depends on (one matching per tree level per candidate
// pair). A Solver is not safe for concurrent use; pool one per worker.
type Solver struct {
	u, v   []int64
	p, way []int
	minv   []int64
	used   []bool
	assign []int
}

// grow sizes every buffer for an n×n problem.
func (s *Solver) grow(n int) {
	if cap(s.u) < n+1 {
		s.u = make([]int64, n+1)
		s.v = make([]int64, n+1)
		s.p = make([]int, n+1)
		s.way = make([]int, n+1)
		s.minv = make([]int64, n+1)
		s.used = make([]bool, n+1)
		s.assign = make([]int, n)
	}
	s.u = s.u[:n+1]
	s.v = s.v[:n+1]
	s.p = s.p[:n+1]
	s.way = s.way[:n+1]
	s.minv = s.minv[:n+1]
	s.used = s.used[:n+1]
	s.assign = s.assign[:n]
	for i := range s.u {
		s.u[i] = 0
		s.v[i] = 0
		s.p[i] = 0
	}
}

// Solve computes the minimum-cost perfect matching of the row-major n×n
// matrix cost. Semantics and results are identical to SolveFlat; the
// returned assignment aliases the Solver's internal buffer and is valid
// until the next call.
func (s *Solver) Solve(cost []int64, n int) (total int64, rowToCol []int) {
	total, rowToCol, _ = s.SolveAtMost(cost, n, Inf)
	return total, rowToCol
}

// SolveAtMost is Solve with an early-abort budget: after each row's
// augmentation the cost of the optimal partial matching built so far is
// a lower bound on the final total (costs are non-negative, so adding
// rows never cheapens the matching), and once that bound exceeds budget
// the solver stops. It returns (partial, nil, false) in that case, where
// partial > budget lower-bounds the true optimum; otherwise it returns
// the exact (total, assignment, true), bit-identical to Solve.
func (s *Solver) SolveAtMost(cost []int64, n int, budget int64) (total int64, rowToCol []int, complete bool) {
	if n == 0 {
		return 0, nil, true
	}
	s.grow(n)
	u, v, p, way, minv, used := s.u, s.v, s.p, s.way, s.minv, s.used

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = Inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			base := (i0 - 1) * n
			var delta int64 = Inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[base+j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
		if budget < Inf {
			// Cost of the optimal matching of the first i rows: a valid
			// lower bound on the final total.
			var partial int64
			for j := 1; j <= n; j++ {
				if p[j] != 0 {
					partial += cost[(p[j]-1)*n+j-1]
				}
			}
			if partial > budget {
				return partial, nil, false
			}
		}
	}

	rowToCol = s.assign
	for j := 1; j <= n; j++ {
		rowToCol[p[j]-1] = j - 1
	}
	for i := 0; i < n; i++ {
		total += cost[i*n+rowToCol[i]]
	}
	return total, rowToCol, true
}

// Solve computes a minimum-cost perfect matching of the n×n cost matrix
// cost (cost[i][j] = weight of assigning row i to column j). It returns
// the total cost and the assignment vector rowToCol where rowToCol[i] is
// the column matched to row i. Costs must be non-negative. An empty
// matrix yields (0, nil).
//
// The matrix must be square; TED* always pads levels to equal size before
// matching (§5.2), so the square case is the only one it needs. Rectangular
// callers can pad with zero rows/columns via SolveRect.
func Solve(cost [][]int64) (total int64, rowToCol []int) {
	n := len(cost)
	if n == 0 {
		return 0, nil
	}
	flat := make([]int64, 0, n*n)
	for _, row := range cost {
		flat = append(flat, row...)
	}
	return SolveFlat(flat, n)
}

// SolveRect handles rectangular matrices by padding the smaller dimension
// with zero-cost dummy rows or columns. Rows matched to dummy columns
// (and vice versa) appear as -1 in the returned assignments.
func SolveRect(cost [][]int64) (total int64, rowToCol []int) {
	rows := len(cost)
	if rows == 0 {
		return 0, nil
	}
	cols := len(cost[0])
	n := rows
	if cols > n {
		n = cols
	}
	sq := make([][]int64, n)
	for i := range sq {
		sq[i] = make([]int64, n)
		if i < rows {
			copy(sq[i], cost[i])
		}
	}
	t, assign := Solve(sq)
	rowToCol = make([]int, rows)
	for i := 0; i < rows; i++ {
		if assign[i] < cols {
			rowToCol[i] = assign[i]
		} else {
			rowToCol[i] = -1
		}
	}
	return t, rowToCol
}

// SolveFlat is Solve for a row-major flattened n×n matrix; it avoids the
// per-row slice headers on hot paths. Semantics match Solve. One-shot
// form of Solver.Solve, which reuses its workspace across calls.
func SolveFlat(cost []int64, n int) (total int64, rowToCol []int) {
	if n == 0 {
		return 0, nil
	}
	var s Solver
	return s.Solve(cost, n)
}

// Greedy computes a (suboptimal) matching by repeatedly taking each row's
// cheapest unused column. It exists only as an ablation baseline showing
// why TED* needs an optimal matcher; its result can exceed the optimum.
func Greedy(cost [][]int64) (total int64, rowToCol []int) {
	n := len(cost)
	rowToCol = make([]int, n)
	usedCol := make([]bool, n)
	for i := 0; i < n; i++ {
		best := -1
		for j := 0; j < n; j++ {
			if usedCol[j] {
				continue
			}
			if best == -1 || cost[i][j] < cost[i][best] {
				best = j
			}
		}
		rowToCol[i] = best
		usedCol[best] = true
		total += cost[i][best]
	}
	return total, rowToCol
}
