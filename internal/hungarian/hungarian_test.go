package hungarian

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce finds the optimal assignment by enumerating permutations.
func bruteForce(cost [][]int64) int64 {
	n := len(cost)
	perm := make([]int, n)
	used := make([]bool, n)
	best := int64(1) << 62
	var rec func(i int, sum int64)
	rec = func(i int, sum int64) {
		if sum >= best {
			return
		}
		if i == n {
			best = sum
			return
		}
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			perm[i] = j
			rec(i+1, sum+cost[i][j])
			used[j] = false
		}
	}
	rec(0, 0)
	return best
}

func TestSolveTiny(t *testing.T) {
	cost := [][]int64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	total, assign := Solve(cost)
	if total != 5 { // 1 + 2 + 2
		t.Errorf("total = %d, want 5", total)
	}
	seen := map[int]bool{}
	var check int64
	for i, j := range assign {
		if seen[j] {
			t.Fatalf("column %d assigned twice", j)
		}
		seen[j] = true
		check += cost[i][j]
	}
	if check != total {
		t.Errorf("assignment cost %d != reported %d", check, total)
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	if total, assign := Solve(nil); total != 0 || assign != nil {
		t.Error("empty matrix should yield 0/nil")
	}
	total, assign := Solve([][]int64{{7}})
	if total != 7 || assign[0] != 0 {
		t.Errorf("1x1: total %d assign %v", total, assign)
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(20))
			}
		}
		want := bruteForce(cost)
		got, assign := Solve(cost)
		if got != want {
			t.Fatalf("trial %d: Solve=%d brute=%d cost=%v", trial, got, want, cost)
		}
		var check int64
		for i, j := range assign {
			check += cost[i][j]
		}
		if check != got {
			t.Fatalf("trial %d: assignment sums to %d, reported %d", trial, check, got)
		}
	}
}

func TestSolveFlatMatchesSolve(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		cost := make([][]int64, n)
		flat := make([]int64, n*n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				v := int64(rng.Intn(50))
				cost[i][j] = v
				flat[i*n+j] = v
			}
		}
		t1, _ := Solve(cost)
		t2, _ := SolveFlat(flat, n)
		return t1 == t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRect(t *testing.T) {
	// 2 rows, 3 columns: rows must each take their cheapest compatible column.
	cost := [][]int64{
		{5, 1, 9},
		{1, 5, 9},
	}
	total, assign := SolveRect(cost)
	if total != 2 {
		t.Errorf("total = %d, want 2", total)
	}
	if assign[0] != 1 || assign[1] != 0 {
		t.Errorf("assign = %v, want [1 0]", assign)
	}
	// 3 rows, 1 column: two rows go unmatched.
	cost2 := [][]int64{{3}, {1}, {2}}
	total2, assign2 := SolveRect(cost2)
	if total2 != 1 {
		t.Errorf("total = %d, want 1", total2)
	}
	matched := 0
	for _, j := range assign2 {
		if j >= 0 {
			matched++
		}
	}
	if matched != 1 {
		t.Errorf("matched rows = %d, want 1", matched)
	}
}

func TestGreedyIsValidButMaybeSuboptimal(t *testing.T) {
	// Greedy picks (0,0)=1 then forces (1,1)=10; optimum is 2+3=5.
	cost := [][]int64{
		{1, 3},
		{2, 10},
	}
	gTotal, gAssign := Greedy(cost)
	if gTotal != 11 {
		t.Errorf("greedy total = %d, want 11", gTotal)
	}
	seen := map[int]bool{}
	for _, j := range gAssign {
		if seen[j] {
			t.Fatal("greedy produced invalid assignment")
		}
		seen[j] = true
	}
	oTotal, _ := Solve(cost)
	if oTotal != 5 {
		t.Errorf("optimal total = %d, want 5", oTotal)
	}
}

func TestGreedyNeverBeatsOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		cost := make([][]int64, n)
		for i := range cost {
			cost[i] = make([]int64, n)
			for j := range cost[i] {
				cost[i][j] = int64(rng.Intn(30))
			}
		}
		gt, _ := Greedy(cost)
		ot, _ := Solve(cost)
		return gt >= ot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolve64(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	cost := make([][]int64, n)
	for i := range cost {
		cost[i] = make([]int64, n)
		for j := range cost[i] {
			cost[i][j] = int64(rng.Intn(100))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}

func BenchmarkSolveFlat256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 256
	flat := make([]int64, n*n)
	for i := range flat {
		flat[i] = int64(rng.Intn(100))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SolveFlat(flat, n)
	}
}
