// Package exact implements exponential-time exact solvers for the two
// NP-hard baselines of the NED paper's Figure 5–6 experiments: the
// original unordered tree edit distance (TED) and the unlabeled graph
// edit distance (GED). Like the A* implementations the paper cites [8,19,29],
// they are practical only for inputs of roughly a dozen nodes; the
// experiments use them exactly in that regime.
package exact

import (
	"ned/internal/tree"
)

// MaxTreeNodes is the guard above which TED refuses to run; beyond this
// size the branch-and-bound search time explodes (the paper reports the
// same ~10–12 node ceiling for its A* baseline).
const MaxTreeNodes = 16

// TED returns the exact unordered tree edit distance between two
// unlabeled rooted trees under unit-cost leaf/internal node insertions
// and deletions (no rename exists for unlabeled trees, §4).
//
// It exploits the classical identity: with unit insert/delete costs the
// edit distance equals |T1| + |T2| − 2·|M*|, where M* is a maximum Tai
// mapping — a one-to-one node correspondence that preserves the ancestor
// relation in both directions. M* is found by branch and bound. The
// second return value is false when either tree exceeds MaxTreeNodes and
// the search was not attempted.
func TED(t1, t2 *tree.Tree) (int, bool) {
	n1, n2 := t1.Size(), t2.Size()
	if n1 > MaxTreeNodes || n2 > MaxTreeNodes {
		return 0, false
	}
	s := &tedSearch{
		anc1: ancestorMatrix(t1),
		anc2: ancestorMatrix(t2),
		n1:   n1,
		n2:   n2,
	}
	s.pairs1 = make([]int8, 0, n1)
	s.pairs2 = make([]int8, 0, n1)
	s.used2 = make([]bool, n2)
	s.best = 0
	s.search(0, 0)
	return n1 + n2 - 2*s.best, true
}

// tedSearch carries the branch-and-bound state for the maximum Tai
// mapping between two trees.
type tedSearch struct {
	anc1, anc2 [][]bool
	n1, n2     int

	pairs1, pairs2 []int8 // currently mapped pairs
	used2          []bool
	best           int
}

// search processes T1 node v; size is the current mapping size.
func (s *tedSearch) search(v, size int) {
	// Bound: even mapping every remaining node (capped by unused T2
	// nodes) cannot beat best.
	rem := s.n1 - v
	if unused := s.n2 - size; unused < rem {
		rem = unused
	}
	if size+rem <= s.best {
		return
	}
	if v == s.n1 {
		if size > s.best {
			s.best = size
		}
		return
	}
	// Option A: map v to every compatible unused T2 node.
	for w := 0; w < s.n2; w++ {
		if s.used2[w] || !s.compatible(v, w) {
			continue
		}
		s.used2[w] = true
		s.pairs1 = append(s.pairs1, int8(v))
		s.pairs2 = append(s.pairs2, int8(w))
		s.search(v+1, size+1)
		s.pairs1 = s.pairs1[:len(s.pairs1)-1]
		s.pairs2 = s.pairs2[:len(s.pairs2)-1]
		s.used2[w] = false
	}
	// Option B: leave v unmapped (deleted).
	s.search(v+1, size)
}

// compatible checks the Tai mapping condition of (v,w) against every
// existing pair: ancestor order must agree in both trees.
func (s *tedSearch) compatible(v, w int) bool {
	for i := range s.pairs1 {
		a, b := int(s.pairs1[i]), int(s.pairs2[i])
		if s.anc1[a][v] != s.anc2[b][w] || s.anc1[v][a] != s.anc2[w][b] {
			return false
		}
	}
	return true
}

// ancestorMatrix returns anc[a][d] = true iff a is a proper ancestor of d.
func ancestorMatrix(t *tree.Tree) [][]bool {
	n := t.Size()
	anc := make([][]bool, n)
	for i := range anc {
		anc[i] = make([]bool, n)
	}
	for v := 1; v < n; v++ {
		p := t.Parent(int32(v))
		for p != -1 {
			anc[p][v] = true
			p = t.Parent(p)
		}
	}
	return anc
}
