package exact

import (
	"ned/internal/graph"
)

// MaxGraphNodes is the guard above which GED refuses to run. Exact GED is
// NP-hard [29]; the paper's A* baseline tops out at 10–12 nodes as well.
const MaxGraphNodes = 12

// GED returns the exact unlabeled graph edit distance between two simple
// graphs under unit costs: inserting/deleting an isolated node costs 1
// and inserting/deleting an edge costs 1 (node substitution is free for
// unlabeled graphs, §11). The second return value is false when either
// graph exceeds MaxGraphNodes.
//
// The search enumerates injective partial mappings of V1 into V2 by
// branch and bound: each V1 node is either mapped to an unused V2 node or
// deleted; unmapped V2 nodes are inserted. For a mapping M the cost is
//
//	(|V1|−|M|) + (|V2|−|M|) + |E1| + |E2| − 2·(preserved edges)
//
// The admissible bound tracks, per search prefix, how many edges of each
// graph are already "decided" (both endpoints assigned/used): decided
// edges that were not preserved are sunk cost, and future preservation is
// capped by the undecided edge counts on both sides.
func GED(g1, g2 *graph.Graph) (int, bool) {
	n1, n2 := g1.NumNodes(), g2.NumNodes()
	if n1 > MaxGraphNodes || n2 > MaxGraphNodes {
		return 0, false
	}
	s := &gedSearch{
		adj1: adjacencyMatrix(g1),
		adj2: adjacencyMatrix(g2),
		n1:   n1,
		n2:   n2,
		m1:   g1.NumEdges(),
		m2:   g2.NumEdges(),
	}
	// decidedPrefix1[v] = number of G1 edges with both endpoints < v.
	s.decidedPrefix1 = make([]int, n1+1)
	for v := 1; v <= n1; v++ {
		s.decidedPrefix1[v] = s.decidedPrefix1[v-1]
		for u := 0; u < v-1; u++ {
			if s.adj1[u][v-1] {
				s.decidedPrefix1[v]++
			}
		}
	}
	s.mapTo = make([]int, n1)
	s.used2 = make([]bool, n2)
	s.best = n1 + n2 + s.m1 + s.m2
	s.search(0, 0, 0, 0)
	return s.best, true
}

type gedSearch struct {
	adj1, adj2 [][]bool
	n1, n2     int
	m1, m2     int

	decidedPrefix1 []int

	mapTo []int // mapTo[v] = w, or -1 for deleted; valid for v < cursor
	used2 []bool
	best  int
}

// search assigns V1 node v. mapped = |M| so far; preserved counts G1
// edges with both endpoints mapped whose image exists in G2; decided2
// counts G2 edges with both endpoints in the used set.
func (s *gedSearch) search(v, mapped, preserved, decided2 int) {
	if v == s.n1 {
		cost := (s.n1 - mapped) + (s.n2 - mapped) + s.m1 + s.m2 - 2*preserved
		if cost < s.best {
			s.best = cost
		}
		return
	}
	// Bound. Node term: the best case maps every remaining V1 node.
	rem := s.n1 - v
	unused2 := s.n2 - mapped
	canMap := rem
	if unused2 < canMap {
		canMap = unused2
	}
	bestMapped := mapped + canMap
	// Edge term: decided-but-unpreserved edges are sunk; future
	// preservation is capped by the undecided edge count on both sides.
	undecided1 := s.m1 - s.decidedPrefix1[v]
	undecided2 := s.m2 - decided2
	futurePreserve := undecided1
	if undecided2 < futurePreserve {
		futurePreserve = undecided2
	}
	maxPreserved := preserved + futurePreserve
	lower := (s.n1 - bestMapped) + (s.n2 - bestMapped) + s.m1 + s.m2 - 2*maxPreserved
	if lower >= s.best {
		return
	}

	for w := 0; w < s.n2; w++ {
		if s.used2[w] {
			continue
		}
		s.used2[w] = true
		s.mapTo[v] = w
		gain := 0
		d2 := 0
		for u := 0; u < v; u++ {
			if s.mapTo[u] < 0 {
				continue
			}
			if s.adj2[s.mapTo[u]][w] {
				d2++
				if s.adj1[u][v] {
					gain++
				}
			}
		}
		s.search(v+1, mapped+1, preserved+gain, decided2+d2)
		s.used2[w] = false
	}
	s.mapTo[v] = -1
	s.search(v+1, mapped, preserved, decided2)
}

func adjacencyMatrix(g *graph.Graph) [][]bool {
	n := g.NumNodes()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	return adj
}

// TreeAsGraph converts a rooted tree to its underlying undirected graph,
// for feeding trees into GED (the §11 bound GED ≤ 2·TED* is stated on
// tree structures).
func TreeAsGraph(t interface {
	Size() int
	Parent(int32) int32
}) *graph.Graph {
	b := graph.NewBuilder(t.Size(), false)
	for v := 1; v < t.Size(); v++ {
		b.AddEdge(graph.NodeID(t.Parent(int32(v))), graph.NodeID(v))
	}
	return b.Build()
}
