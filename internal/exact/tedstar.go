package exact

import (
	"ned/internal/tree"
)

// MaxLevelWidth caps the per-level width for the exhaustive TED* oracle;
// the search enumerates all bijections of each padded level, so widths
// beyond ~6 are impractical (6!² transitions per level pair).
const MaxLevelWidth = 6

// TEDStar returns the exact Definition-3 TED* value — the true minimum
// number of {insert leaf, delete leaf, move within level} operations —
// by exhaustive dynamic programming over per-level alignments. It is the
// oracle against which the polynomial Algorithm-1 implementation in
// internal/ted is validated (see the faithfulness note there).
//
// Characterization used: any valid edit script induces, per depth d, a
// bijection σ_d between the two levels after padding the smaller one, and
// conversely every family {σ_d} is realizable by a script of cost
//
//	Σ_d P_d  +  Σ_d #{real-real pairs (x,y) ∈ σ_d with σ_{d-1}(parent x) ≠ parent y}
//
// (pad the smaller level, then move every real node whose parents are not
// aligned; inserts attach to the correct parent for free, deletes happen
// bottom-up). The oracle minimizes this over all bijection families with
// a level-by-level DP whose state is the current level's bijection.
//
// The second return value is false when any level is wider than
// MaxLevelWidth and the search was not attempted.
func TEDStar(t1, t2 *tree.Tree) (int, bool) {
	maxD := t1.Height()
	if h := t2.Height(); h > maxD {
		maxD = h
	}
	// Per depth, list the real node IDs of each side and the padded width.
	type level struct {
		a, b []int32 // real node IDs (padded slots are -1)
		n    int     // padded width
		pad  int     // padding cost
	}
	levels := make([]level, maxD+1)
	total := 0
	for d := 0; d <= maxD; d++ {
		la := t1.Level(d)
		lb := t2.Level(d)
		n := len(la)
		if len(lb) > n {
			n = len(lb)
		}
		if n > MaxLevelWidth {
			return 0, false
		}
		pad := len(la) - len(lb)
		if pad < 0 {
			pad = -pad
		}
		total += pad
		a := make([]int32, n)
		b := make([]int32, n)
		for i := 0; i < n; i++ {
			a[i], b[i] = -1, -1
		}
		copy(a, la)
		copy(b, lb)
		levels[d] = level{a: a, b: b, n: n, pad: pad}
	}

	// DP over depths. State: permutation σ mapping slot i of side A to
	// slot σ[i] of side B at the current depth. Value: minimum move cost
	// so far. Depth 0 has a single real-real pair (the roots), and any
	// permutation of padded slots is equivalent, so we still enumerate —
	// widths are tiny.
	type state struct {
		perm []int
		cost int
	}
	var cur []state
	for _, p := range permutations(levels[0].n) {
		cur = append(cur, state{perm: p, cost: 0})
	}
	for d := 1; d <= maxD; d++ {
		lv := levels[d]
		up := levels[d-1]
		// Precompute, for every slot pair (i at d), the parent slots.
		parentSlotA := make([]int, lv.n) // slot in up.a, or -1 for padded
		parentSlotB := make([]int, lv.n)
		for i := 0; i < lv.n; i++ {
			parentSlotA[i] = slotOfParent(t1, lv.a[i], up.a)
			parentSlotB[i] = slotOfParent(t2, lv.b[i], up.b)
		}
		perms := permutations(lv.n)
		next := make([]state, 0, len(perms))
		for _, p := range perms {
			best := -1
			for _, s := range cur {
				moves := 0
				for i := 0; i < lv.n; i++ {
					j := p[i]
					if lv.a[i] == -1 || lv.b[j] == -1 {
						continue // padded slots never cost moves
					}
					// Real-real pair: parents must be aligned by σ_{d-1}.
					pa, pb := parentSlotA[i], parentSlotB[j]
					if s.perm[pa] != pb {
						moves++
					}
				}
				if best == -1 || s.cost+moves < best {
					best = s.cost + moves
				}
			}
			next = append(next, state{perm: p, cost: best})
		}
		cur = next
	}
	bestMoves := -1
	for _, s := range cur {
		if bestMoves == -1 || s.cost < bestMoves {
			bestMoves = s.cost
		}
	}
	return total + bestMoves, true
}

// slotOfParent finds the index of node v's parent within slots, or -1 for
// a padded (v == -1) node.
func slotOfParent(t *tree.Tree, v int32, slots []int32) int {
	if v == -1 {
		return -1
	}
	p := t.Parent(v)
	for i, s := range slots {
		if s == p {
			return i
		}
	}
	return -1
}

// permutations enumerates all permutations of {0..n-1}. n is capped by
// MaxLevelWidth at the call sites.
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for v := 0; v < n; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[i] = v
			rec(i + 1)
			used[v] = false
		}
	}
	rec(0)
	return out
}
