package exact

import (
	"math/rand"
	"testing"

	"ned/internal/graph"
	"ned/internal/ted"
	"ned/internal/tree"
)

func narrowRandomTree(rng *rand.Rand, maxDepth int) *tree.Tree {
	// Keep level widths within MaxLevelWidth for the TED* oracle.
	widths := []int{1}
	for d := 1; d <= maxDepth; d++ {
		w := 1 + rng.Intn(4)
		widths = append(widths, w)
	}
	return tree.RandomShape(rng, widths[:1+rng.Intn(maxDepth+1)])
}

func TestTEDStarOracleHandCases(t *testing.T) {
	cases := []struct {
		a, b *tree.Tree
		want int
	}{
		{tree.Star(3), tree.Star(5), 2},
		{tree.Path(3), tree.Star(3), 3},
		{tree.Path(4), tree.Path(2), 2},
		{tree.Path(1), tree.FullKAry(2, 2), 6},
		// Single move: root->{A(2 kids),B} vs root->{A'(1),B'(1)}.
		{tree.MustNew([]int32{-1, 0, 0, 1, 1}), tree.MustNew([]int32{-1, 0, 0, 1, 2}), 1},
	}
	for i, c := range cases {
		got, ok := TEDStar(c.a, c.b)
		if !ok {
			t.Fatalf("case %d: oracle refused", i)
		}
		if got != c.want {
			t.Errorf("case %d: TEDStar = %d, want %d", i, got, c.want)
		}
	}
}

func TestTEDStarOracleSymmetricAndMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 150; i++ {
		a := narrowRandomTree(rng, 3)
		b := narrowRandomTree(rng, 3)
		c := narrowRandomTree(rng, 3)
		ab, ok1 := TEDStar(a, b)
		ba, ok2 := TEDStar(b, a)
		if !ok1 || !ok2 {
			continue
		}
		if ab != ba {
			t.Fatalf("case %d: oracle asymmetric: %d vs %d", i, ab, ba)
		}
		if (ab == 0) != tree.Isomorphic(a, b) {
			t.Fatalf("case %d: identity violated: d=%d iso=%v", i, ab, tree.Isomorphic(a, b))
		}
		bc, ok3 := TEDStar(b, c)
		ac, ok4 := TEDStar(a, c)
		if ok3 && ok4 && ac > ab+bc {
			t.Fatalf("case %d: oracle triangle violated: %d > %d+%d", i, ac, ab, bc)
		}
	}
}

func TestAlgorithmUpperBoundsOracle(t *testing.T) {
	// The polynomial Algorithm-1 value is the cost of a valid edit
	// script, so it can never undercut the exhaustive optimum; it should
	// also match it most of the time.
	rng := rand.New(rand.NewSource(6))
	total, equal := 0, 0
	for i := 0; i < 400; i++ {
		a := narrowRandomTree(rng, 3)
		b := narrowRandomTree(rng, 3)
		opt, ok := TEDStar(a, b)
		if !ok {
			continue
		}
		algo := ted.Distance(a, b)
		if algo < opt {
			t.Fatalf("case %d: algorithm %d < optimum %d\nA:\n%s\nB:\n%s",
				i, algo, opt, a.Pretty(), b.Pretty())
		}
		total++
		if algo == opt {
			equal++
		}
	}
	if total == 0 {
		t.Fatal("no cases ran")
	}
	if ratio := float64(equal) / float64(total); ratio < 0.95 {
		t.Errorf("algorithm matched the optimum in only %.1f%% of %d cases", 100*ratio, total)
	}
}

func TestExactTEDHandCases(t *testing.T) {
	cases := []struct {
		a, b *tree.Tree
		want int
	}{
		{tree.Star(3), tree.Star(3), 0},
		{tree.Star(3), tree.Star(5), 2},
		{tree.Path(4), tree.Path(2), 2},
		// Path(3) vs Star(3): TED can delete the middle node (1 op) and
		// insert a leaf... T1 = root-a-b (3 nodes), T2 = root with 3
		// leaves. Delete a (b attaches to root in TED semantics)? TED
		// node deletion promotes children, so: delete a (b hangs off
		// root), insert 2 leaves = 3 ops. Or: max mapping size 2
		// (root,root)+(a,leaf) => 3+4-2*2 = 3.
		{tree.Path(3), tree.Star(3), 3},
	}
	for i, c := range cases {
		got, ok := TED(c.a, c.b)
		if !ok {
			t.Fatalf("case %d: TED refused", i)
		}
		if got != c.want {
			t.Errorf("case %d: TED = %d, want %d", i, got, c.want)
		}
	}
}

func TestExactTEDMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		a := tree.Random(rng, 8, 3)
		b := tree.Random(rng, 8, 3)
		c := tree.Random(rng, 8, 3)
		ab, _ := TED(a, b)
		ba, _ := TED(b, a)
		if ab != ba {
			t.Fatalf("case %d: TED asymmetric %d vs %d", i, ab, ba)
		}
		if (ab == 0) != tree.Isomorphic(a, b) {
			t.Fatalf("case %d: TED identity violated", i)
		}
		bc, _ := TED(b, c)
		ac, _ := TED(a, c)
		if ac > ab+bc {
			t.Fatalf("case %d: TED triangle violated: %d > %d+%d", i, ac, ab, bc)
		}
	}
}

func TestExactTEDRefusesLargeTrees(t *testing.T) {
	if _, ok := TED(tree.Path(MaxTreeNodes+1), tree.Path(2)); ok {
		t.Error("TED should refuse trees above MaxTreeNodes")
	}
}

func TestWeightedTEDStarUpperBoundsTED(t *testing.T) {
	// Lemma 7: δT(W+) >= TED.
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 150; i++ {
		a := tree.Random(rng, 9, 3)
		b := tree.Random(rng, 9, 3)
		tedExact, ok := TED(a, b)
		if !ok {
			continue
		}
		wplus := ted.WeightedDistance(a, b, ted.UpperBoundWeights{})
		if wplus < float64(tedExact)-1e-9 {
			t.Fatalf("case %d: W+ %v < exact TED %d\nA:\n%s\nB:\n%s",
				i, wplus, tedExact, a.Pretty(), b.Pretty())
		}
	}
}

func TestGEDHandCases(t *testing.T) {
	triangle := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	path3 := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	single := graph.FromEdges(1, nil)

	if d, _ := GED(triangle, triangle); d != 0 {
		t.Errorf("GED(triangle, triangle) = %d, want 0", d)
	}
	// Triangle -> path: delete one edge.
	if d, _ := GED(triangle, path3); d != 1 {
		t.Errorf("GED(triangle, path3) = %d, want 1", d)
	}
	// Single node -> triangle: insert 2 nodes + 3 edges.
	if d, _ := GED(single, triangle); d != 5 {
		t.Errorf("GED(single, triangle) = %d, want 5", d)
	}
}

func TestGEDMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	randGraph := func() *graph.Graph {
		n := 2 + rng.Intn(5)
		b := graph.NewBuilder(n, false)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					b.AddEdge(graph.NodeID(i), graph.NodeID(j))
				}
			}
		}
		return b.Build()
	}
	for i := 0; i < 40; i++ {
		a, b, c := randGraph(), randGraph(), randGraph()
		ab, _ := GED(a, b)
		ba, _ := GED(b, a)
		if ab != ba {
			t.Fatalf("case %d: GED asymmetric %d vs %d", i, ab, ba)
		}
		bc, _ := GED(b, c)
		ac, _ := GED(a, c)
		if ac > ab+bc {
			t.Fatalf("case %d: GED triangle violated: %d > %d+%d", i, ac, ab, bc)
		}
	}
}

func TestGEDUpperBoundByTEDStar(t *testing.T) {
	// Equation 18: GED(t1, t2) <= 2 * TED*(t1, t2) on tree structures.
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 80; i++ {
		a := tree.Random(rng, 7, 3)
		b := tree.Random(rng, 7, 3)
		ged, ok := GED(TreeAsGraph(a), TreeAsGraph(b))
		if !ok {
			continue
		}
		tedStar := ted.Distance(a, b)
		if ged > 2*tedStar {
			t.Fatalf("case %d: GED %d > 2*TED* %d\nA:\n%s\nB:\n%s",
				i, ged, tedStar, a.Pretty(), b.Pretty())
		}
	}
}

func TestGEDRefusesLargeGraphs(t *testing.T) {
	big := graph.FromEdges(MaxGraphNodes+1, []graph.Edge{{U: 0, V: 1}})
	if _, ok := GED(big, big); ok {
		t.Error("GED should refuse graphs above MaxGraphNodes")
	}
}
